package sched

import (
	"context"
	"testing"

	"dike/internal/platform"
	"dike/internal/platform/platformtest"
	"dike/internal/sim"
	"dike/internal/workload"
)

// buildMachine returns a machine loaded with WL1 at a small scale.
func buildMachine(t *testing.T, wlN int, scale float64) (*platformtest.Machine, *workload.Instance) {
	t.Helper()
	m := platformtest.NewMachine(platformtest.DefaultConfig())
	inst, err := workload.MustTable2(wlN).Build(m, workload.BuildOptions{Seed: 42, Scale: scale})
	if err != nil {
		t.Fatal(err)
	}
	return m, inst
}

func TestSpreadPlacementOneThreadPerCore(t *testing.T) {
	m, _ := buildMachine(t, 1, 0.1)
	if err := SpreadPlacement(m, 42); err != nil {
		t.Fatal(err)
	}
	seen := make(map[platform.CoreID]int)
	for _, id := range m.Threads() {
		c, err := m.CoreOf(id)
		if err != nil {
			t.Fatal(err)
		}
		seen[c]++
	}
	// 40 threads on 40 logical cores: exactly one each.
	if len(seen) != 40 {
		t.Fatalf("threads landed on %d cores, want 40", len(seen))
	}
	for c, n := range seen {
		if n != 1 {
			t.Errorf("core %d has %d threads", c, n)
		}
	}
}

func TestSpreadPlacementMixesBenchmarks(t *testing.T) {
	m, inst := buildMachine(t, 1, 0.1)
	if err := SpreadPlacement(m, 42); err != nil {
		t.Fatal(err)
	}
	// Each benchmark's 8 threads should hit both core kinds with high
	// probability under a shuffled placement: check jacobi (bench 0).
	topo := m.Topology()
	kinds := map[platform.CoreKind]int{}
	for _, id := range inst.ThreadsOf(0) {
		c, _ := m.CoreOf(id)
		kinds[topo.Core(c).Kind]++
	}
	if len(kinds) < 2 {
		t.Errorf("jacobi landed on a single core kind: %v (unlucky seed?)", kinds)
	}
}

func TestSpreadPlacementDeterministic(t *testing.T) {
	m1, _ := buildMachine(t, 1, 0.1)
	m2, _ := buildMachine(t, 1, 0.1)
	if err := SpreadPlacement(m1, 7); err != nil {
		t.Fatal(err)
	}
	if err := SpreadPlacement(m2, 7); err != nil {
		t.Fatal(err)
	}
	p1 := m1.PlacementSnapshot()
	p2 := m2.PlacementSnapshot()
	for id, c := range p1 {
		if p2[id] != c {
			t.Fatalf("placement diverged at thread %d", id)
		}
	}
}

func TestSpreadPlacementWrapsWhenOversubscribed(t *testing.T) {
	cfg := platformtest.DefaultConfig()
	cfg.Topology.FastPhysical = 1
	cfg.Topology.SlowPhysical = 1
	m := platformtest.NewMachine(cfg) // 4 logical cores
	for i := 0; i < 10; i++ {
		if err := m.AddThread(platform.ThreadID(i), 0, platformtest.ConstProgram{Work: 10}); err != nil {
			t.Fatal(err)
		}
	}
	if err := SpreadPlacement(m, 1); err != nil {
		t.Fatal(err)
	}
	for _, id := range m.Threads() {
		if _, err := m.CoreOf(id); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCFSPlacesOnceAndOnlyOnce(t *testing.T) {
	m, _ := buildMachine(t, 1, 0.1)
	cfs := NewCFS(m, 42)
	if cfs.Name() != "cfs" {
		t.Error("name wrong")
	}
	if cfs.QuantaLength() <= 0 {
		t.Error("quanta not positive")
	}
	cfs.Quantum(0)
	before := m.PlacementSnapshot()
	m.Step(0, 1)
	cfs.Quantum(1000)
	after := m.PlacementSnapshot()
	for id := range before {
		if before[id] != after[id] {
			t.Fatal("CFS moved a thread after initial placement")
		}
	}
	if m.MigrationCount() != 0 {
		t.Error("CFS migrated threads")
	}
}

func TestNullPolicy(t *testing.T) {
	m, _ := buildMachine(t, 1, 0.1)
	n := NewNull(m, 42)
	if n.Name() != "null" {
		t.Error("name wrong")
	}
	n.Quantum(0)
	m.Step(0, 1)
	if m.MigrationCount() != 0 {
		t.Error("null policy migrated")
	}
}

func TestSamplerDeltas(t *testing.T) {
	m, _ := buildMachine(t, 1, 0.1)
	if err := SpreadPlacement(m, 42); err != nil {
		t.Fatal(err)
	}
	first := m.Sample(0)
	if first.Interval != 0 {
		t.Errorf("first sample interval = %v, want 0", first.Interval)
	}
	for now := sim.Time(0); now < 100; now++ {
		m.Step(now, 1)
	}
	snd := m.Sample(100)
	if snd.Interval != 100 {
		t.Errorf("second interval = %v, want 100", snd.Interval)
	}
	// Every alive thread has a delta with positive work.
	for _, id := range m.Alive() {
		d := snd.Threads[id]
		if d.Work <= 0 {
			t.Errorf("thread %d delta work = %v", id, d.Work)
		}
		if d.Instructions <= 0 {
			t.Errorf("thread %d delta instructions = %v", id, d.Instructions)
		}
	}
	// Core deltas sum to thread miss deltas.
	coreSum, threadSum := 0.0, 0.0
	for c := range snd.Cores {
		coreSum += snd.Cores[c].ServedMisses
	}
	for _, d := range snd.Threads {
		threadSum += d.Misses
	}
	if diff := coreSum - threadSum; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("core misses %v != thread misses %v", coreSum, threadSum)
	}
	// AccessRate helper.
	id := m.Alive()[0]
	if snd.AccessRate(id) != snd.Threads[id].AccessRate() {
		t.Error("AccessRate helper mismatch")
	}
}

func TestDIOSwapsExtremePair(t *testing.T) {
	m, _ := buildMachine(t, 1, 0.1)
	d := NewDIO(m, 42)
	if d.Name() != "dio" {
		t.Error("name wrong")
	}
	if d.QuantaLength() != DIOQuantum {
		t.Errorf("quanta = %v", d.QuantaLength())
	}
	d.Quantum(0) // placement + baseline
	if m.SwapCount() != 0 {
		t.Error("DIO swapped on the placement quantum")
	}
	for now := sim.Time(0); now < 100; now++ {
		m.Step(now, 1)
	}
	d.Quantum(100)
	if m.SwapCount() != 1 {
		t.Fatalf("swaps after first real quantum = %d, want 1", m.SwapCount())
	}
	for now := sim.Time(100); now < 200; now++ {
		m.Step(now, 1)
	}
	d.Quantum(200)
	if m.SwapCount() != 2 {
		t.Fatalf("swaps = %d, want 2", m.SwapCount())
	}
}

func TestDIOFullRun(t *testing.T) {
	m, inst := buildMachine(t, 1, 0.15)
	d := NewDIO(m, 42)
	eng, err := sim.NewEngine(m, d, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Roughly one swap per quantum.
	if m.SwapCount() == 0 {
		t.Error("DIO performed no swaps")
	}
	_ = inst
}
