package sched

import (
	"sort"

	"dike/internal/platform"
	"dike/internal/sim"
)

// DIO implements Distributed Intensity Online (Zhuravlev et al., ASPLOS
// 2010) as the paper describes it: "the scheduler measures last level
// cache miss rates at runtime, sorts them from highest to lowest, and
// then pairs threads by choosing one from top of the list (highest miss
// rate) and one from bottom of the list (lowest miss rate) and swaps
// them." Each quantum it swaps the extreme pair — no prediction, no
// profit gate, no fairness gate — so over a multi-minute run it performs
// on the order of a swap per quantum (Table III's ~2000), which is
// exactly the overhead Dike's predictor exists to avoid: "DIO swaps
// [its] threads in every quanta ignoring the overhead of thread
// migrations."
type DIO struct {
	p      platform.Platform
	seed   uint64
	ql     sim.Time
	placed bool
}

// DIOQuantum is DIO's scheduling quantum (100 ms; the swap counts in
// Table III correspond to roughly one swap per 100 ms over runs of a few
// minutes).
const DIOQuantum sim.Time = 100

// NewDIO returns a DIO policy over p.
func NewDIO(p platform.Platform, seed uint64) *DIO {
	return &DIO{p: p, seed: seed, ql: DIOQuantum}
}

// Name implements Policy.
func (d *DIO) Name() string { return "dio" }

// QuantaLength implements Policy.
func (d *DIO) QuantaLength() sim.Time { return d.ql }

// Quantum implements Policy.
func (d *DIO) Quantum(now sim.Time) error {
	if !d.placed {
		if err := SpreadPlacement(d.p, d.seed); err != nil {
			return err
		}
		d.placed = true
		d.p.Sample(now) // establish the counter baseline
		return nil
	}
	sample := d.p.Sample(now)
	if sample.Interval <= 0 {
		return nil
	}
	alive := d.p.Alive()
	if len(alive) < 2 {
		return nil
	}
	// Sort by miss rate, highest first. Thread id breaks ties so the
	// order — and therefore the whole run — is deterministic.
	sorted := make([]platform.ThreadID, len(alive))
	copy(sorted, alive)
	sort.Slice(sorted, func(i, j int) bool {
		ri, rj := sample.AccessRate(sorted[i]), sample.AccessRate(sorted[j])
		if ri != rj {
			return ri > rj
		}
		return sorted[i] < sorted[j]
	})
	// Swap the extreme pair: highest miss rate with lowest.
	return d.p.Swap(sorted[0], sorted[len(sorted)-1], now)
}
