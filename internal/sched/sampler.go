package sched

import (
	"dike/internal/counters"
	"dike/internal/machine"
	"dike/internal/sim"
)

// Sample is one quantum's worth of counter deltas: what a userspace
// scheduler learns from reading the PMU at quantum boundaries.
type Sample struct {
	// Interval is the elapsed time since the previous sample, ms. Zero
	// on the very first sample of a run.
	Interval float64
	// Threads maps each alive thread to its counter delta.
	Threads map[machine.ThreadID]counters.ThreadDelta
	// Cores holds per-core deltas, indexed by core id.
	Cores []counters.CoreDelta
}

// AccessRate returns the measured memory access rate of tid during this
// sample (misses/ms), or 0 if the thread was not sampled.
func (s *Sample) AccessRate(tid machine.ThreadID) float64 {
	return s.Threads[tid].AccessRate()
}

// Sampler snapshots the machine's counters at quantum boundaries and
// produces deltas, exactly as a real contention-aware scheduler samples
// hardware counters.
type Sampler struct {
	m        *machine.Machine
	lastTime sim.Time
	first    bool
	prevT    map[machine.ThreadID]counters.ThreadCounters
	prevC    []counters.CoreCounters
}

// NewSampler returns a sampler over m's counter file.
func NewSampler(m *machine.Machine) *Sampler {
	return &Sampler{
		m:     m,
		first: true,
		prevT: make(map[machine.ThreadID]counters.ThreadCounters),
		prevC: make([]counters.CoreCounters, m.Counters().NumCores()),
	}
}

// Sample reads the counters at time now and returns deltas since the
// previous call. The first call returns zero deltas (Interval 0); callers
// typically skip scheduling on it.
func (s *Sampler) Sample(now sim.Time) *Sample {
	file := s.m.Counters()
	interval := float64(now - s.lastTime)
	if s.first {
		interval = 0
		s.first = false
	}
	out := &Sample{
		Interval: interval,
		Threads:  make(map[machine.ThreadID]counters.ThreadDelta),
		Cores:    make([]counters.CoreDelta, file.NumCores()),
	}
	dis := s.m.Disruptor()
	for _, tid := range s.m.Alive() {
		prev := s.prevT[tid]
		delta := file.DiffThread(int(tid), prev, interval)
		s.prevT[tid] = file.Thread(int(tid))
		if dis != nil && interval > 0 {
			// Counter faults: the read may be lost (thread absent from the
			// sample) or corrupted. The underlying cumulative counters are
			// untouched, so a later successful read recovers.
			d, ok := dis.PerturbDelta(tid, now, delta)
			if !ok {
				continue
			}
			delta = d
		}
		out.Threads[tid] = delta
	}
	for c := 0; c < file.NumCores(); c++ {
		out.Cores[c] = file.DiffCore(c, s.prevC[c], interval)
		s.prevC[c] = file.Core(c)
	}
	s.lastTime = now
	return out
}
