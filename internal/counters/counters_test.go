package counters

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestFileAddAndRead(t *testing.T) {
	f := NewFile(4)
	f.AddThread(0)
	f.AddThread(7)
	if f.NumCores() != 4 {
		t.Errorf("NumCores = %d, want 4", f.NumCores())
	}
	ids := f.ThreadIDs()
	sort.Ints(ids)
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 7 {
		t.Errorf("ThreadIDs = %v", ids)
	}
	f.MutThread(7).Misses = 12
	if got := f.Thread(7).Misses; got != 12 {
		t.Errorf("Misses = %v, want 12", got)
	}
	// Thread returns a copy.
	snap := f.Thread(7)
	snap.Misses = 99
	if f.Thread(7).Misses != 12 {
		t.Error("Thread returned a live reference")
	}
}

func TestFileDuplicatePanics(t *testing.T) {
	f := NewFile(1)
	f.AddThread(1)
	defer func() {
		if recover() == nil {
			t.Error("duplicate AddThread did not panic")
		}
	}()
	f.AddThread(1)
}

func TestFileUnknownThreadPanics(t *testing.T) {
	f := NewFile(1)
	defer func() {
		if recover() == nil {
			t.Error("unknown thread did not panic")
		}
	}()
	f.MutThread(3)
}

func TestThreadDelta(t *testing.T) {
	f := NewFile(2)
	f.AddThread(0)
	prev := f.Thread(0)
	tc := f.MutThread(0)
	tc.Misses = 50
	tc.Accesses = 200
	tc.Instructions = 1000
	tc.Work = 1
	tc.Migrations = 2
	d := f.DiffThread(0, prev, 100)
	if d.AccessRate() != 0.5 {
		t.Errorf("AccessRate = %v, want 0.5", d.AccessRate())
	}
	if d.MissRatio() != 0.25 {
		t.Errorf("MissRatio = %v, want 0.25", d.MissRatio())
	}
	if d.IPS() != 10 {
		t.Errorf("IPS = %v, want 10", d.IPS())
	}
	if d.Migrations != 2 {
		t.Errorf("Migrations = %d, want 2", d.Migrations)
	}
}

func TestDeltaDegenerateIntervals(t *testing.T) {
	d := ThreadDelta{Interval: 0, Misses: 10, Accesses: 0, Instructions: 5}
	if d.AccessRate() != 0 || d.IPS() != 0 {
		t.Error("zero interval should yield zero rates")
	}
	if d.MissRatio() != 0 {
		t.Error("zero accesses should yield zero miss ratio")
	}
}

func TestCoreDelta(t *testing.T) {
	f := NewFile(2)
	prev := f.Core(1)
	f.MutCore(1).ServedMisses = 30
	d := f.DiffCore(1, prev, 60)
	if d.Bandwidth() != 0.5 {
		t.Errorf("Bandwidth = %v, want 0.5", d.Bandwidth())
	}
	if (CoreDelta{Interval: 0, ServedMisses: 5}).Bandwidth() != 0 {
		t.Error("zero interval should yield zero bandwidth")
	}
}

func TestDiffThreadIsExactDifference(t *testing.T) {
	// Differencing two snapshots always recovers exactly what was added
	// between them, for any update sequence.
	f := func(add1, add2 []float64) bool {
		file := NewFile(1)
		file.AddThread(0)
		apply := func(xs []float64) float64 {
			sum := 0.0
			for _, x := range xs {
				if x < 0 || x > 1e12 {
					continue
				}
				file.MutThread(0).Misses += x
				sum += x
			}
			return sum
		}
		apply(add1)
		snap := file.Thread(0)
		want := apply(add2)
		d := file.DiffThread(0, snap, 1)
		diff := d.Misses - want
		return diff < 1e-6 && diff > -1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestThreadDeltaSane(t *testing.T) {
	good := ThreadDelta{Interval: 100, Instructions: 1e6, Accesses: 1e4, Misses: 500, Work: 1e5}
	if !good.Sane() {
		t.Error("plausible delta reported insane")
	}
	nan := math.NaN()
	cases := []struct {
		name string
		mut  func(*ThreadDelta)
	}{
		{"nan misses", func(d *ThreadDelta) { d.Misses = nan }},
		{"nan accesses", func(d *ThreadDelta) { d.Accesses = nan }},
		{"nan instructions", func(d *ThreadDelta) { d.Instructions = nan }},
		{"nan work", func(d *ThreadDelta) { d.Work = nan }},
		{"+inf misses", func(d *ThreadDelta) { d.Misses = math.Inf(1) }},
		{"-inf misses", func(d *ThreadDelta) { d.Misses = math.Inf(-1) }},
		{"+inf accesses", func(d *ThreadDelta) { d.Accesses = math.Inf(1) }},
		{"negative misses", func(d *ThreadDelta) { d.Misses = -1 }},
		{"negative accesses", func(d *ThreadDelta) { d.Accesses = -0.5 }},
		{"negative instructions", func(d *ThreadDelta) { d.Instructions = -1e3 }},
		{"negative work", func(d *ThreadDelta) { d.Work = -1 }},
	}
	for _, c := range cases {
		d := good
		c.mut(&d)
		if d.Sane() {
			t.Errorf("%s reported sane", c.name)
		}
	}
	// A zero-length quantum yields a zero delta: still sane (rates are
	// separately guarded by Interval checks), and all rates must be 0.
	zero := ThreadDelta{}
	if !zero.Sane() {
		t.Error("zero delta reported insane")
	}
	if zero.AccessRate() != 0 || zero.IPS() != 0 || zero.MissRatio() != 0 {
		t.Error("zero-interval delta produced nonzero rates")
	}
	// Saturated counters are finite and non-negative: Sane cannot reject
	// them (a real PMU rollover looks like a huge but valid count), so
	// downstream consumers must clamp against physical capacity instead.
	sat := good
	sat.Misses, sat.Accesses = 1e12, 1e12
	if !sat.Sane() {
		t.Error("saturated delta must pass Sane (clamping is the consumer's job)")
	}
}

func TestCoreDeltaSane(t *testing.T) {
	if !(CoreDelta{Interval: 100, ServedMisses: 1e4}).Sane() {
		t.Error("plausible core delta reported insane")
	}
	bad := []CoreDelta{
		{Interval: 100, ServedMisses: math.NaN()},
		{Interval: 100, ServedMisses: math.Inf(1)},
		{Interval: 100, ServedMisses: math.Inf(-1)},
		{Interval: 100, ServedMisses: -5},
	}
	for i, d := range bad {
		if d.Sane() {
			t.Errorf("bad core delta %d reported sane", i)
		}
	}
}
