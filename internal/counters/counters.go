// Package counters emulates the hardware performance counters the paper's
// Observer reads. The machine model is the only writer; schedulers are
// read-only consumers and may observe nothing about a thread beyond what a
// real PMU would expose — cumulative instruction, LLC-access and LLC-miss
// counts — plus per-core served-bandwidth counts (the uncore counters used
// to maintain the paper's CoreBW estimate).
//
// Counters are cumulative; rate-style metrics (memory access rate, miss
// ratio) are derived by differencing snapshots across a quantum, exactly
// as a sampling profiler would.
package counters

import (
	"fmt"
	"math"
)

// ThreadCounters is the cumulative counter block for one thread.
type ThreadCounters struct {
	Work         float64 // abstract work units completed (not PMU-visible; used only by metrics)
	Instructions float64 // retired instructions (proportional to work)
	Accesses     float64 // LLC accesses
	Misses       float64 // LLC misses, i.e. main-memory transactions
	StallTime    float64 // ms spent stalled on migrations
	Migrations   int     // number of times the thread changed cores
}

// CoreCounters is the cumulative counter block for one logical core.
type CoreCounters struct {
	ServedMisses float64 // memory transactions issued by threads while on this core
	BusyTime     float64 // ms with at least one unfinished thread resident
}

// File holds all counters for a machine. The zero value is unusable;
// construct with NewFile.
type File struct {
	threads map[int]*ThreadCounters
	cores   []CoreCounters
}

// NewFile returns a counter file for nCores logical cores.
func NewFile(nCores int) *File {
	return &File{
		threads: make(map[int]*ThreadCounters),
		cores:   make([]CoreCounters, nCores),
	}
}

// AddThread registers a thread id. It panics on duplicates: thread ids are
// assigned once by the machine and a collision is a programming error.
func (f *File) AddThread(tid int) {
	if _, ok := f.threads[tid]; ok {
		panic(fmt.Sprintf("counters: duplicate thread %d", tid))
	}
	f.threads[tid] = &ThreadCounters{}
}

// MutThread returns the mutable counter block for tid, for the machine's
// use only. It panics on unknown ids.
func (f *File) MutThread(tid int) *ThreadCounters {
	tc, ok := f.threads[tid]
	if !ok {
		panic(fmt.Sprintf("counters: unknown thread %d", tid))
	}
	return tc
}

// MutCore returns the mutable counter block for core c.
func (f *File) MutCore(c int) *CoreCounters { return &f.cores[c] }

// Thread returns a copy of the counter block for tid.
func (f *File) Thread(tid int) ThreadCounters { return *f.MutThread(tid) }

// Core returns a copy of the counter block for core c.
func (f *File) Core(c int) CoreCounters { return f.cores[c] }

// NumCores returns the number of logical cores tracked.
func (f *File) NumCores() int { return len(f.cores) }

// ThreadIDs returns the registered thread ids in unspecified order.
func (f *File) ThreadIDs() []int {
	ids := make([]int, 0, len(f.threads))
	for id := range f.threads {
		ids = append(ids, id)
	}
	return ids
}

// ThreadDelta is the difference of two thread counter snapshots over an
// interval, with derived rates.
type ThreadDelta struct {
	Interval     float64 // ms
	Work         float64 // simulator-internal; not PMU-visible
	Instructions float64
	Accesses     float64
	Misses       float64
	Migrations   int
}

// IPS returns retired instructions per ms over the interval.
func (d ThreadDelta) IPS() float64 {
	if d.Interval <= 0 {
		return 0
	}
	return d.Instructions / d.Interval
}

// AccessRate returns LLC misses per ms over the interval — the paper's
// "memory access rate", its primary contention metric.
func (d ThreadDelta) AccessRate() float64 {
	if d.Interval <= 0 {
		return 0
	}
	return d.Misses / d.Interval
}

// Sane reports whether the delta is physically plausible: all counter
// fields finite and non-negative. Real PMUs glitch — reads race resets,
// registers saturate, buggy drivers return garbage — so consumers must
// gate on this before deriving rates; an insane delta carries no
// information and should be treated as a missing sample.
func (d ThreadDelta) Sane() bool {
	for _, v := range [...]float64{d.Instructions, d.Accesses, d.Misses, d.Work} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return false
		}
	}
	return true
}

// MissRatio returns misses/accesses over the interval (0 when the thread
// performed no accesses). The paper classifies a thread as memory
// intensive when this exceeds 10%.
func (d ThreadDelta) MissRatio() float64 {
	if d.Accesses <= 0 {
		return 0
	}
	return d.Misses / d.Accesses
}

// DiffThread returns the delta between a previous snapshot and the current
// counters for tid over interval ms.
func (f *File) DiffThread(tid int, prev ThreadCounters, interval float64) ThreadDelta {
	cur := f.Thread(tid)
	return ThreadDelta{
		Interval:     interval,
		Work:         cur.Work - prev.Work,
		Instructions: cur.Instructions - prev.Instructions,
		Accesses:     cur.Accesses - prev.Accesses,
		Misses:       cur.Misses - prev.Misses,
		Migrations:   cur.Migrations - prev.Migrations,
	}
}

// CoreDelta is the difference of two core counter snapshots.
type CoreDelta struct {
	Interval     float64
	ServedMisses float64
}

// Sane reports whether the core delta is physically plausible (finite,
// non-negative). See ThreadDelta.Sane.
func (d CoreDelta) Sane() bool {
	return !math.IsNaN(d.ServedMisses) && !math.IsInf(d.ServedMisses, 0) && d.ServedMisses >= 0
}

// Bandwidth returns the achieved memory bandwidth (misses served per ms)
// of the core over the interval.
func (d CoreDelta) Bandwidth() float64 {
	if d.Interval <= 0 {
		return 0
	}
	return d.ServedMisses / d.Interval
}

// DiffCore returns the delta between a previous snapshot and the current
// counters for core c over interval ms.
func (f *File) DiffCore(c int, prev CoreCounters, interval float64) CoreDelta {
	cur := f.Core(c)
	return CoreDelta{
		Interval:     interval,
		ServedMisses: cur.ServedMisses - prev.ServedMisses,
	}
}
