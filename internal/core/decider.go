package core

import (
	"dike/internal/machine"
	"dike/internal/sim"
)

// Decider applies the paper's two acceptance rules to predicted swaps
// (§III-D): a thread is never swapped in consecutive quanta (cool-down),
// and pairs whose predicted total profit is not positive are ignored.
type Decider struct {
	// lastSwapped records the quantum index in which each thread was
	// last migrated.
	lastSwapped map[machine.ThreadID]int
	// cooldown is how many quanta a swapped thread rests. At the default
	// 500 ms quantum this is 1 — the paper's "does not swap a thread in
	// consecutive quanta" — and it scales up at shorter quanta so the
	// rest period stays roughly constant in time (a freshly migrated
	// thread's counters are polluted by the migration for a fixed real
	// time, not a fixed number of quanta).
	cooldown int
	// DisableCooldown and DisableProfitGate switch the two rules off for
	// ablation studies; both false in normal operation.
	DisableCooldown   bool
	DisableProfitGate bool
}

// cooldownWindow is the target rest time after a migration, ms.
const cooldownWindow = 400

// NewDecider returns an empty decider.
func NewDecider() *Decider {
	return &Decider{lastSwapped: make(map[machine.ThreadID]int), cooldown: 1}
}

// SetQuanta informs the decider of the current quantum length so the
// cooldown can stay constant in time across adaptive retuning.
func (d *Decider) SetQuanta(q sim.Time) {
	cd := 1
	if q > 0 && q < cooldownWindow {
		cd = int((cooldownWindow + q - 1) / q)
	}
	d.cooldown = cd
}

// Filter returns the predictions that survive both rules at quantum
// index q. It does not record anything; call Committed for the swaps the
// migrator actually performs.
func (d *Decider) Filter(preds []Prediction, q int) []Prediction {
	var out []Prediction
	for _, p := range preds {
		if !d.DisableCooldown && (d.swappedLastQuantum(p.Pair.Low, q) || d.swappedLastQuantum(p.Pair.High, q)) {
			continue
		}
		if !d.DisableProfitGate && !p.Pair.Equalize && p.Total <= 0 {
			continue
		}
		out = append(out, p)
	}
	return out
}

// swappedLastQuantum reports whether tid was swapped within the cooldown
// window ending at quantum q.
func (d *Decider) swappedLastQuantum(tid machine.ThreadID, q int) bool {
	last, ok := d.lastSwapped[tid]
	return ok && q-last <= d.cooldown
}

// Committed records that both members of pair were swapped at quantum q.
func (d *Decider) Committed(pair Pair, q int) {
	d.lastSwapped[pair.Low] = q
	d.lastSwapped[pair.High] = q
}

// Migrator executes accepted swaps by exchanging the two threads' core
// affinities (§III-E): no third core is used, and the order of the two
// migrations is immaterial, so Swap applies both atomically at the
// quantum boundary.
type Migrator struct {
	m *machine.Machine
}

// NewMigrator returns a migrator over m.
func NewMigrator(m *machine.Machine) *Migrator { return &Migrator{m: m} }

// Apply performs the swaps in preds at time now, recording them with d
// at quantum index q. It returns how many swaps were executed.
func (mg *Migrator) Apply(preds []Prediction, d *Decider, q int, now sim.Time) int {
	n := 0
	for _, p := range preds {
		if err := mg.m.Swap(p.Pair.Low, p.Pair.High, now); err != nil {
			panic(err)
		}
		d.Committed(p.Pair, q)
		n++
	}
	return n
}
