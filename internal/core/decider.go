package core

import (
	"dike/internal/platform"
	"dike/internal/sim"
)

// Decider applies the paper's two acceptance rules to predicted swaps
// (§III-D): a thread is never swapped in consecutive quanta (cool-down),
// and pairs whose predicted total profit is not positive are ignored.
type Decider struct {
	// lastSwapped records the quantum index in which each thread was
	// last migrated.
	lastSwapped map[platform.ThreadID]int
	// cooldown is how many quanta a swapped thread rests. At the default
	// 500 ms quantum this is 1 — the paper's "does not swap a thread in
	// consecutive quanta" — and it scales up at shorter quanta so the
	// rest period stays roughly constant in time (a freshly migrated
	// thread's counters are polluted by the migration for a fixed real
	// time, not a fixed number of quanta).
	cooldown int
	// DisableCooldown and DisableProfitGate switch the two rules off for
	// ablation studies; both false in normal operation.
	DisableCooldown   bool
	DisableProfitGate bool
}

// cooldownWindow is the target rest time after a migration, ms.
const cooldownWindow = 400

// NewDecider returns an empty decider.
func NewDecider() *Decider {
	return &Decider{lastSwapped: make(map[platform.ThreadID]int), cooldown: 1}
}

// SetQuanta informs the decider of the current quantum length so the
// cooldown can stay constant in time across adaptive retuning.
func (d *Decider) SetQuanta(q sim.Time) {
	cd := 1
	if q > 0 && q < cooldownWindow {
		cd = int((cooldownWindow + q - 1) / q)
	}
	d.cooldown = cd
}

// Filter returns the predictions that survive both rules at quantum
// index q. It does not record anything; call Committed for the swaps the
// migrator actually performs.
func (d *Decider) Filter(preds []Prediction, q int) []Prediction {
	var out []Prediction
	for _, p := range preds {
		if !d.DisableCooldown && (d.swappedLastQuantum(p.Pair.Low, q) || d.swappedLastQuantum(p.Pair.High, q)) {
			continue
		}
		if !d.DisableProfitGate && !p.Pair.Equalize && p.Total <= 0 {
			continue
		}
		out = append(out, p)
	}
	return out
}

// swappedLastQuantum reports whether tid was swapped within the cooldown
// window ending at quantum q.
func (d *Decider) swappedLastQuantum(tid platform.ThreadID, q int) bool {
	last, ok := d.lastSwapped[tid]
	return ok && q-last <= d.cooldown
}

// Committed records that both members of pair were swapped at quantum q.
func (d *Decider) Committed(pair Pair, q int) {
	d.lastSwapped[pair.Low] = q
	d.lastSwapped[pair.High] = q
}

// Migrator executes accepted swaps by exchanging the two threads' core
// affinities (§III-E): no third core is used, and the order of the two
// migrations is immaterial, so Swap applies both atomically at the
// quantum boundary.
//
// Affinity changes on a faulty platform can be silently lost, so the
// Migrator verifies after each swap that both threads actually landed on
// their destination cores. A swap that did not fully take is rolled
// back (any half-applied move is undone, best-effort) and left
// un-committed in the Decider's bookkeeping, so the cool-down does not
// block the pair from being retried in a later quantum.
type Migrator struct {
	p platform.Platform
	// failed counts swaps that did not take effect and were rolled back.
	failed int
}

// NewMigrator returns a migrator over p.
func NewMigrator(p platform.Platform) *Migrator { return &Migrator{p: p} }

// FailedSwaps returns how many accepted swaps did not take effect.
func (mg *Migrator) FailedSwaps() int { return mg.failed }

// Apply performs the swaps in preds at time now, recording with d (at
// quantum index q) only the swaps verified to have taken effect. It
// returns how many swaps were executed and verified.
func (mg *Migrator) Apply(preds []Prediction, d *Decider, q int, now sim.Time) (int, error) {
	n := 0
	for _, p := range preds {
		lo, hi := p.Pair.Low, p.Pair.High
		cl, err := mg.p.CoreOf(lo)
		if err != nil {
			return n, err
		}
		ch, err := mg.p.CoreOf(hi)
		if err != nil {
			return n, err
		}
		if err := mg.p.Swap(lo, hi, now); err != nil {
			return n, err
		}
		nl, err := mg.p.CoreOf(lo)
		if err != nil {
			return n, err
		}
		nh, err := mg.p.CoreOf(hi)
		if err != nil {
			return n, err
		}
		if (nl == ch && nh == cl) || cl == ch {
			d.Committed(p.Pair, q)
			n++
			continue
		}
		// The swap did not fully take. Undo any half-applied move so the
		// pair is not left split across an unintended placement; the
		// rollback migrations may themselves fail silently, in which case
		// the next quantum's observation sees the true placement anyway.
		mg.failed++
		if nl != cl {
			if err := mg.p.Migrate(lo, cl, now); err != nil {
				return n, err
			}
		}
		if nh != ch {
			if err := mg.p.Migrate(hi, ch, now); err != nil {
				return n, err
			}
		}
	}
	return n, nil
}
