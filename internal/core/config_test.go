package core

import (
	"testing"

	"dike/internal/sim"
)

func TestDefaultConfigValid(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	// The paper's default configuration is ⟨swapSize 8, quanta 500⟩.
	if cfg.SwapSize != 8 || cfg.QuantaLength != 500 {
		t.Errorf("default = ⟨%d,%d⟩, want ⟨8,500⟩", cfg.SwapSize, cfg.QuantaLength)
	}
	if cfg.FairnessThreshold != 0.1 {
		t.Errorf("θf = %v, want 0.1", cfg.FairnessThreshold)
	}
	if cfg.MissRatioThreshold != 0.10 {
		t.Errorf("miss threshold = %v, want 0.10", cfg.MissRatioThreshold)
	}
}

func TestConfigSpace(t *testing.T) {
	// 4 quanta levels x 8 swap sizes = the paper's 32 configurations.
	if len(QuantaLevels) != 4 {
		t.Errorf("quanta levels = %d", len(QuantaLevels))
	}
	if got := len(SwapSizeLevels()); got != 8 {
		t.Errorf("swap sizes = %d", got)
	}
	if len(QuantaLevels)*len(SwapSizeLevels()) != NumConfigurations {
		t.Error("configuration space size mismatch")
	}
	for _, s := range SwapSizeLevels() {
		if s%2 != 0 || s < MinSwapSize || s > MaxSwapSize {
			t.Errorf("bad swap size %d", s)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.QuantaLength = 300 },
		func(c *Config) { c.SwapSize = 7 },
		func(c *Config) { c.SwapSize = 0 },
		func(c *Config) { c.SwapSize = 18 },
		func(c *Config) { c.FairnessThreshold = 0 },
		func(c *Config) { c.MissRatioThreshold = 1 },
		func(c *Config) { c.CoreBWAlpha = 2 },
		func(c *Config) { c.SwapOH = -1 },
		func(c *Config) { c.AdaptEvery = 0 },
		func(c *Config) { c.Goal = AdaptationGoal(9) },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestQuantaIndex(t *testing.T) {
	for i, q := range QuantaLevels {
		got, ok := quantaIndex(q)
		if !ok || got != i {
			t.Errorf("quantaIndex(%d) = %d,%v, want %d,true", q, got, ok, i)
		}
	}
	if _, ok := quantaIndex(sim.Time(123)); ok {
		t.Error("invalid quanta reported as valid")
	}
}

func TestNearestQuantaIndex(t *testing.T) {
	cases := []struct {
		q    sim.Time
		want int
	}{
		{0, 0}, {100, 0}, {123, 0}, {180, 1}, {400, 2}, {999, 3}, {5000, 3},
	}
	for _, c := range cases {
		if got := nearestQuantaIndex(c.q); got != c.want {
			t.Errorf("nearestQuantaIndex(%d) = %d, want %d", c.q, got, c.want)
		}
	}
}

func TestGoalString(t *testing.T) {
	if AdaptNone.String() != "none" || AdaptFairness.String() != "fairness" || AdaptPerformance.String() != "performance" {
		t.Error("goal strings wrong")
	}
}

func TestClassString(t *testing.T) {
	if ComputeClass.String() != "C" || MemoryClass.String() != "M" {
		t.Error("class strings wrong")
	}
}
