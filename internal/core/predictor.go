package core

import "dike/internal/sim"

// Prediction is the Predictor's assessment of one candidate swap.
type Prediction struct {
	Pair Pair
	// ProfitLow/ProfitHigh are the expected access-rate changes for the
	// low- and high-access threads (Eqn 1); Total is their sum (Eqn 3).
	ProfitLow  float64
	ProfitHigh float64
	Total      float64
	// PredLowRate/PredHighRate are the predicted post-swap access rates:
	// each thread is expected to consume its destination core's
	// bandwidth (the closed-loop model's core assumption).
	PredLowRate  float64
	PredHighRate float64
}

// Predictor implements the paper's closed-loop prediction model
// (Eqns 1–3). For a pair ⟨t_l, t_h⟩ the profit of swapping t_l is
//
//	profit(t_l) = CoreBW(core of t_h) − AccessRate(t_l) − Overhead(t_l)
//	Overhead(t_l) = swapOH/quantaLength · AccessRate(t_l)
//
// i.e. the expected access rate if the swap happens minus the expected
// rate if it does not (the thread keeps its current rate), minus the
// context-switch cost.
//
// The CoreBW term — "we assume that if a thread migrates to a new core,
// it consumes the new core's entire memory bandwidth" — is realised as
// Observation.PredictRate: the destination core's relative capability
// times the thread's own demand baseline. Using the destination core's
// raw served bandwidth instead would make every converged swap's total
// profit identically −Overhead (the two cores' bandwidths are exactly
// the two threads' current rates), collapsing the Decider into a reject-
// everything gate; DESIGN.md records this refinement.
//
// The model is closed-loop: capability, baseline and AccessRate all come
// from live feedback, so systematic error — including the unprofiled
// part of migration overhead — is absorbed on the next quantum rather
// than requiring offline training.
type Predictor struct {
	// SwapOH is the estimated per-swap overhead time, ms (Eqn 2).
	SwapOH float64
}

// Predict evaluates one candidate pair under observation obs with the
// current quantum length.
func (p Predictor) Predict(obs *Observation, pair Pair, quanta sim.Time) Prediction {
	destLow := obs.CoreOf[pair.High] // t_l moves to t_h's core
	destHigh := obs.CoreOf[pair.Low] // and vice versa

	rateLow := obs.Rate[pair.Low]
	rateHigh := obs.Rate[pair.High]
	ohFrac := 0.0
	if quanta > 0 {
		ohFrac = p.SwapOH / float64(quanta)
	}

	predLow := obs.PredictRate(pair.Low, destLow)
	predHigh := obs.PredictRate(pair.High, destHigh)
	profitLow := predLow - rateLow - ohFrac*rateLow
	profitHigh := predHigh - rateHigh - ohFrac*rateHigh

	return Prediction{
		Pair:         pair,
		ProfitLow:    profitLow,
		ProfitHigh:   profitHigh,
		Total:        profitLow + profitHigh,
		PredLowRate:  predLow,
		PredHighRate: predHigh,
	}
}
