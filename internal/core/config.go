// Package core implements Dike, the paper's contribution: a predictive,
// adaptive, contention-aware scheduler for heterogeneous multicores.
//
// Dike divides time into quanta. Each quantum (Figure 3):
//
//	Observer  — reads performance counters, classifies threads as
//	            compute/memory intensive, maintains per-core bandwidth
//	            moving means (CoreBW);
//	Selector  — checks the system-fairness gate (coefficient of
//	            variation of access rates vs θf) and pairs placement-rule
//	            violators (Algorithm 1);
//	Predictor — estimates the access-rate profit of each candidate swap
//	            with the closed-loop model of Eqns 1–3;
//	Decider   — drops pairs swapped last quantum and pairs with
//	            non-positive predicted profit;
//	Migrator  — executes the surviving swaps as affinity exchanges;
//	Optimizer — (adaptive modes) retunes quantaLength and swapSize to
//	            the current workload type per Algorithm 2.
package core

import (
	"errors"
	"fmt"

	"dike/internal/sim"
)

// AdaptationGoal selects what the Optimizer tunes for.
type AdaptationGoal int

const (
	// AdaptNone runs Dike with fixed parameters (the paper's "Dike").
	AdaptNone AdaptationGoal = iota
	// AdaptFairness is the paper's Dike-AF.
	AdaptFairness
	// AdaptPerformance is the paper's Dike-AP.
	AdaptPerformance
	// AdaptEnergy is the energy-aware variant (Dike-EA, beyond the
	// paper): while the system is unfair it adapts like Dike-AF, but its
	// guard metric is fairness weighted by the platform's power draw —
	// and while the system is fair it lengthens the quantum to spend
	// fewer decisions (and with a capping governor attached, fewer
	// watts) on an already-fair schedule.
	AdaptEnergy
)

// String names the goal as the paper does.
func (g AdaptationGoal) String() string {
	switch g {
	case AdaptFairness:
		return "fairness"
	case AdaptPerformance:
		return "performance"
	case AdaptEnergy:
		return "energy"
	default:
		return "none"
	}
}

// QuantaLevels are the quantum lengths Dike draws from (§III-F).
var QuantaLevels = []sim.Time{100, 200, 500, 1000}

// Swap-size bounds: any even number from MinSwapSize up to MaxSwapSize
// ("2 to half the total number of running threads", capped at 16 by
// Algorithm 2; 4 quanta levels x 8 swap sizes = the paper's 32
// configurations).
const (
	MinSwapSize = 2
	MaxSwapSize = 16
)

// SwapSizeLevels returns the valid swap sizes, in increasing order.
func SwapSizeLevels() []int {
	var out []int
	for s := MinSwapSize; s <= MaxSwapSize; s += 2 {
		out = append(out, s)
	}
	return out
}

// NumConfigurations is the size of Dike's configuration space (Fig 4).
const NumConfigurations = 32

// Config parameterises a Dike instance.
type Config struct {
	// QuantaLength is the time between scheduling decisions. Default
	// 500 ms (the paper's non-adaptive default ⟨8, 500⟩).
	QuantaLength sim.Time
	// SwapSize is the number of threads to swap per quantum (even).
	// Default 8.
	SwapSize int
	// FairnessThreshold is θf: if the coefficient of variation of the
	// threads' memory access rates is below it, the system is fair and
	// the quantum takes no action. Default 0.1.
	FairnessThreshold float64
	// MissRatioThreshold classifies a thread as memory intensive when
	// its LLC miss ratio exceeds it. Default 0.10 (Xie & Loh boundary).
	MissRatioThreshold float64
	// CoreBWAlpha is the EWMA weight for the CoreBW moving means.
	// Default 0.25.
	CoreBWAlpha float64
	// SwapOH is the scheduler's estimate of per-swap thread overhead
	// (ms), used by the Overhead term of Eqn 2. Default 3.
	SwapOH float64
	// Goal selects non-adaptive, fairness-adaptive or
	// performance-adaptive operation.
	Goal AdaptationGoal
	// AdaptEvery is how many quanta pass between Optimizer invocations
	// in adaptive modes. Default 4 — each invocation moves parameters by
	// at most one unit, so adaptation is gradual, as in Algorithm 2.
	AdaptEvery int
	// PlacementSeed seeds the shared initial spread placement.
	PlacementSeed uint64

	// Ablation switches (normally all false). They disable individual
	// design elements so the benchmark suite can measure each one's
	// contribution: the Decider's profit gate (Eqns 1–3), its swap
	// cool-down, and the Selector's intra-process equalization pairs.
	DisableProfitGate   bool
	DisableCooldown     bool
	DisableEqualization bool
	// UseIPCMetric replaces the memory access rate with retired
	// instructions per ms as the Observer's contention metric. The paper
	// argues against IPC ("IPC fails to represent actual progress in
	// heterogeneous systems where different cores could have different
	// clock speeds", §III-A); this switch exists to measure that claim.
	UseIPCMetric bool
}

// DefaultConfig returns the paper's default Dike configuration.
func DefaultConfig() Config {
	return Config{
		QuantaLength:       500,
		SwapSize:           8,
		FairnessThreshold:  0.1,
		MissRatioThreshold: 0.10,
		CoreBWAlpha:        0.25,
		SwapOH:             3,
		Goal:               AdaptNone,
		AdaptEvery:         4,
	}
}

// Validate reports the first problem with the configuration, or nil.
func (c Config) Validate() error {
	if !validQuanta(c.QuantaLength) {
		return fmt.Errorf("core: quantaLength %d not in %v", c.QuantaLength, QuantaLevels)
	}
	if c.SwapSize < MinSwapSize || c.SwapSize > MaxSwapSize || c.SwapSize%2 != 0 {
		return fmt.Errorf("core: swapSize %d not an even number in [%d,%d]", c.SwapSize, MinSwapSize, MaxSwapSize)
	}
	switch {
	case c.FairnessThreshold <= 0:
		return errors.New("core: fairness threshold must be positive")
	case c.MissRatioThreshold <= 0 || c.MissRatioThreshold >= 1:
		return errors.New("core: miss-ratio threshold must be in (0,1)")
	case c.CoreBWAlpha <= 0 || c.CoreBWAlpha > 1:
		return errors.New("core: CoreBWAlpha must be in (0,1]")
	case c.SwapOH < 0:
		return errors.New("core: negative SwapOH")
	case c.AdaptEvery < 1:
		return errors.New("core: AdaptEvery must be >= 1")
	}
	switch c.Goal {
	case AdaptNone, AdaptFairness, AdaptPerformance, AdaptEnergy:
	default:
		return fmt.Errorf("core: unknown adaptation goal %d", c.Goal)
	}
	return nil
}

func validQuanta(q sim.Time) bool {
	for _, l := range QuantaLevels {
		if q == l {
			return true
		}
	}
	return false
}

// quantaIndex returns q's index in QuantaLevels and whether q is one of
// the valid levels.
func quantaIndex(q sim.Time) (int, bool) {
	for i, l := range QuantaLevels {
		if q == l {
			return i, true
		}
	}
	return 0, false
}

// nearestQuantaIndex returns the index of the valid level closest to q,
// preferring the shorter level on ties. It lets the Optimizer self-heal
// from an out-of-set quantum length instead of panicking.
func nearestQuantaIndex(q sim.Time) int {
	best, bestDist := 0, sim.Time(-1)
	for i, l := range QuantaLevels {
		d := q - l
		if d < 0 {
			d = -d
		}
		if bestDist < 0 || d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}
