package core

import "dike/internal/sim"

// WorkloadType is the Optimizer's online workload classification
// (§III-F): balanced, unbalanced-compute or unbalanced-memory, from the
// observed counts of memory- and compute-classified threads.
type WorkloadType int

const (
	// TypeB — memory and compute thread counts roughly equal.
	TypeB WorkloadType = iota
	// TypeUC — compute-intensive threads outnumber memory-intensive.
	TypeUC
	// TypeUM — memory-intensive threads outnumber compute-intensive.
	TypeUM
)

// String returns the paper's shorthand.
func (t WorkloadType) String() string {
	switch t {
	case TypeB:
		return "B"
	case TypeUC:
		return "UC"
	default:
		return "UM"
	}
}

// classifyWorkload types the current mix. Exact equality is too brittle
// for online counts (classifications flutter near the miss-ratio
// boundary), so a band around one half is treated as balanced.
func classifyWorkload(obs *Observation) WorkloadType {
	total := len(obs.Alive)
	if total == 0 {
		return TypeB
	}
	frac := float64(obs.MemoryThreads()) / float64(total)
	switch {
	case frac < 0.45:
		return TypeUC
	case frac > 0.68:
		// The band is asymmetric because the ever-present KMEANS
		// contention app classifies memory-intensive, tilting balanced
		// mixes above one half.
		return TypeUM
	default:
		return TypeB
	}
}

// Optimizer adaptively tunes ⟨swapSize, quantaLength⟩ per Algorithm 2:
// starting from the default configuration it moves one unit per
// invocation in the direction the contour analysis (Fig 5) prescribes
// for the current workload type and adaptation goal, within the
// parameter ranges of §III-F.
//
// Beyond the pseudocode, the paper notes that "in every step of the
// adaptation, the optimizer ensures changing scheduling parameters does
// not harm the desired behavior"; the Optimizer therefore watches its
// goal metric and reverts the most recent step if the metric degraded
// materially, then holds for a few invocations before retrying.
type Optimizer struct {
	goal     AdaptationGoal
	swapSize int
	quanta   sim.Time

	// Guard state.
	guardOn    bool
	prevMetric float64
	havePrev   bool
	lastSwap   int
	lastQuanta sim.Time
	stepped    bool
	holdUntil  int // invocation count until which no new steps are taken
	calls      int
}

// NewOptimizer returns an optimizer starting from the given
// configuration. guard enables the revert-on-degradation protection.
func NewOptimizer(goal AdaptationGoal, swapSize int, quanta sim.Time, guard bool) *Optimizer {
	return &Optimizer{
		goal:     goal,
		swapSize: swapSize,
		quanta:   quanta,
		guardOn:  guard,
	}
}

// Params returns the current ⟨swapSize, quantaLength⟩.
func (o *Optimizer) Params() (int, sim.Time) { return o.swapSize, o.quanta }

// Step runs one optimizer invocation (Algorithm 2). fairness is the
// current gate value (mean per-process CV; lower is fairer), θf the
// fairness threshold, and goalMetric the measured value of the
// adaptation goal for the guard: for fairness adaptation lower is
// better (it is the gate value itself); for performance adaptation
// higher is better (aggregate progress rate).
func (o *Optimizer) Step(obs *Observation, fairness, theta, goalMetric float64) {
	o.calls++
	if o.goal == AdaptNone {
		return
	}

	// Guard: if the previous step made the goal metric materially worse,
	// undo it and hold.
	if o.guardOn && o.stepped && o.havePrev {
		worse := false
		const margin = 0.05
		if o.goal == AdaptFairness || o.goal == AdaptEnergy {
			// Lower is better: the gate value itself, or (energy mode)
			// the gate value weighted by the platform's power draw.
			worse = goalMetric > o.prevMetric*(1+margin)
		} else {
			worse = goalMetric < o.prevMetric*(1-margin)
		}
		if worse {
			o.swapSize, o.quanta = o.lastSwap, o.lastQuanta
			o.stepped = false
			o.holdUntil = o.calls + 3
			o.prevMetric = goalMetric
			return
		}
	}
	o.prevMetric = goalMetric
	o.havePrev = true
	o.stepped = false

	// Algorithm 2 line 2: nothing to do while the system is fair —
	// except in energy mode, where a fair system is an opportunity to
	// lengthen the quantum and spend fewer scheduling decisions on it.
	if fairness < theta {
		if o.goal == AdaptEnergy && o.calls >= o.holdUntil {
			o.lastSwap, o.lastQuanta = o.swapSize, o.quanta
			o.incQuanta(1000)
			o.stepped = o.swapSize != o.lastSwap || o.quanta != o.lastQuanta
		}
		return
	}
	if o.calls < o.holdUntil {
		return
	}

	wt := classifyWorkload(obs)
	o.lastSwap, o.lastQuanta = o.swapSize, o.quanta

	switch o.goal {
	case AdaptFairness, AdaptEnergy:
		switch wt {
		case TypeB:
			o.decQuanta(100)
		case TypeUC:
			o.incSwap()
			o.decQuanta(200)
		case TypeUM:
			o.incSwap()
			o.decQuanta(500)
		}
	case AdaptPerformance:
		switch wt {
		case TypeB:
			o.incQuanta(1000)
		case TypeUC:
			o.incSwap()
			o.incQuanta(1000)
		case TypeUM:
			o.incQuanta(1000)
		}
	}
	o.stepped = o.swapSize != o.lastSwap || o.quanta != o.lastQuanta
}

// ForceParams overrides the current ⟨swapSize, quantaLength⟩ — the
// watchdog's revert-to-last-known-good hook. Out-of-range values are
// snapped into the valid parameter space. The optimizer's guard state is
// reset and stepping is held for a few invocations so the restored
// configuration gets a fair observation window before adaptation
// resumes.
func (o *Optimizer) ForceParams(swap int, q sim.Time) {
	if swap < MinSwapSize {
		swap = MinSwapSize
	}
	if swap > MaxSwapSize {
		swap = MaxSwapSize
	}
	if swap%2 != 0 {
		swap--
	}
	o.swapSize = swap
	o.quanta = QuantaLevels[o.quantaIdx(q)]
	o.stepped = false
	o.havePrev = false
	o.holdUntil = o.calls + 3
}

// quantaIdx is quantaIndex with self-healing: an out-of-set length snaps
// to the nearest valid level rather than panicking mid-run.
func (o *Optimizer) quantaIdx(q sim.Time) int {
	if i, ok := quantaIndex(q); ok {
		return i
	}
	return nearestQuantaIndex(q)
}

// incSwap raises swapSize one level, capped at MaxSwapSize.
func (o *Optimizer) incSwap() {
	if o.swapSize+2 <= MaxSwapSize {
		o.swapSize += 2
	}
}

// decQuanta lowers quantaLength one level, flooring at `floor`.
func (o *Optimizer) decQuanta(floor sim.Time) {
	i := o.quantaIdx(o.quanta)
	if i > 0 && QuantaLevels[i-1] >= floor {
		o.quanta = QuantaLevels[i-1]
	}
}

// incQuanta raises quantaLength one level, capped at `cap`.
func (o *Optimizer) incQuanta(capT sim.Time) {
	i := o.quantaIdx(o.quanta)
	if i < len(QuantaLevels)-1 && QuantaLevels[i+1] <= capT {
		o.quanta = QuantaLevels[i+1]
	}
}
