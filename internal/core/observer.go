package core

import (
	"fmt"
	"sort"

	"dike/internal/platform"
	"dike/internal/sim"
	"dike/internal/stats"
)

// ThreadClass is the Observer's online classification of a thread.
type ThreadClass int

const (
	// ComputeClass threads mostly hit in the LLC ("C").
	ComputeClass ThreadClass = iota
	// MemoryClass threads miss to DRAM on more than the configured
	// fraction of LLC accesses ("M").
	MemoryClass
)

// String returns "C" or "M".
func (c ThreadClass) String() string {
	if c == MemoryClass {
		return "M"
	}
	return "C"
}

// Observation is everything one quantum of observing yields: the raw
// counter sample, thread classifications, access rates, the per-core
// bandwidth estimates, and the high/low-bandwidth core partition.
type Observation struct {
	Now    sim.Time
	Sample *platform.Sample
	// Alive lists live threads in ascending id order.
	Alive []platform.ThreadID
	// Class is the current per-thread classification.
	Class map[platform.ThreadID]ThreadClass
	// Rate is the measured access rate (misses/ms) per thread.
	Rate map[platform.ThreadID]float64
	// Baseline is the thread's intrinsic demand estimate: the mean
	// access rate of its process's threads this quantum. Homogeneous
	// threads of one process doing equal work make this a core-agnostic
	// demand figure.
	Baseline map[platform.ThreadID]float64
	// Instr is each thread's cumulative retired-instruction count — the
	// PMU-visible progress proxy the Selector uses to rotate lagging
	// siblings onto fast cores.
	Instr map[platform.ThreadID]float64
	// CoreOf is each thread's current core.
	CoreOf map[platform.ThreadID]platform.CoreID
	// Proc maps each thread to its process (benchmark) id. Process
	// membership is OS-visible (tgid), so using it carries no a priori
	// knowledge about application character.
	Proc map[platform.ThreadID]int
	// CoreBW is the per-core moving-mean served bandwidth (misses/ms) —
	// the paper's CoreBW variable in raw form; kept for diagnostics.
	CoreBW []float64
	// Capability is the per-core relative bandwidth capability estimate
	// (1.0 = average core): the moving mean of occupants' access rates
	// normalized by their process baselines. A thread running faster
	// than its process siblings reveals a strong core; slower, a weak
	// or contended one. This is the closed-loop realisation of the
	// paper's core identification: it needs no frequency tables and
	// tracks contention ("a core may become low-bandwidth due to
	// contention").
	Capability []float64
	// HighBW marks cores in the higher-capability half of the occupied
	// cores (the Observer's "core identification").
	HighBW map[platform.CoreID]bool
	// Held marks threads whose counter reading this quantum was missing
	// or rejected by sanitization; their Rate is the held last-good
	// estimate (zero once the estimate is too stale to trust). Consumers
	// must not treat held rates as fresh feedback — the Predictor's
	// error bookkeeping and the capability estimator both skip them.
	Held map[platform.ThreadID]bool
	// Sanitized counts this quantum's counter-sanitization actions.
	Sanitized SanitizeStats
	// SystemCV is the coefficient of variation of all alive threads'
	// access rates, for diagnostics.
	SystemCV float64
	// Fairness is the Selector's gate value: the worst (maximum) over
	// processes of the coefficient of variation of access rates among
	// that process's threads. Homogeneous threads of one process
	// progressing at equal rates ⇒ low CV ⇒ fair; taking the worst
	// process makes the gate an online analogue of Eqn 4 that only
	// closes when every application is progressing uniformly.
	Fairness float64
}

// MemoryThreads returns how many alive threads are classified M.
func (o *Observation) MemoryThreads() int {
	n := 0
	for _, id := range o.Alive {
		if o.Class[id] == MemoryClass {
			n++
		}
	}
	return n
}

// ComputeThreads returns how many alive threads are classified C.
func (o *Observation) ComputeThreads() int { return len(o.Alive) - o.MemoryThreads() }

// PredictRate is the Observer-backed estimate of the access rate thread
// id would achieve on core c: the core's relative capability times the
// thread's intrinsic demand baseline. It is the quantity Eqn 1 calls
// CoreBW — "the thread consumes the new core's bandwidth" — expressed in
// the migrating thread's own demand units so that swapping a compute
// thread onto a big core is not predicted to magically produce a memory
// hog's bandwidth.
func (o *Observation) PredictRate(id platform.ThreadID, c platform.CoreID) float64 {
	return o.Capability[c] * o.Baseline[id]
}

// SanitizeStats counts the Observer's counter-sanitization actions:
// what a hostile PMU fed it and what it did about it.
type SanitizeStats struct {
	// Dropped counts samples that were missing entirely (read lost).
	Dropped int
	// Rejected counts NaN/Inf/negative readings thrown away.
	Rejected int
	// Clamped counts finite readings capped at physical capacity.
	Clamped int
}

// add accumulates other into s.
func (s *SanitizeStats) add(other SanitizeStats) {
	s.Dropped += other.Dropped
	s.Rejected += other.Rejected
	s.Clamped += other.Clamped
}

// baselineAlpha is the EWMA weight for the per-process demand baseline.
const baselineAlpha = 0.3

// maxStaleQuanta bounds hold-last-good: a thread whose readings have
// been missing or garbage for more than this many consecutive quanta
// stops contributing its stale estimate (its rate reads zero and it is
// excluded from baseline updates) until a good sample arrives.
const maxStaleQuanta = 3

// minBaseline is the smallest process-mean access rate considered
// informative for capability estimation; below it the occupant reveals
// nothing about the core (an idle or stalled process).
const minBaseline = 0.02

// Observer performs the paper's two observation jobs (§III-A): thread
// classification (memory vs compute intensive, from measured LLC miss
// ratios) and core identification (higher vs lower bandwidth cores, via
// the per-core capability moving means). It sees only the platform seam:
// performance counters plus OS-visible thread and topology state.
type Observer struct {
	p      platform.Platform
	missTh float64
	// useIPC switches the contention metric from memory access rate to
	// instructions per ms (ablation only; see Config.UseIPCMetric).
	useIPC bool
	// capacity is the controller's physical service capacity; no sane
	// per-thread rate can exceed it, so saturated readings clamp here.
	capacity float64
	coreBW   []*stats.MovingMean
	capab    []*stats.MovingMean
	class    map[platform.ThreadID]ThreadClass
	// procBase smooths each process's mean access rate across quanta so
	// that a single burst quantum does not fling a whole process across
	// the placement boundary and back (burst-chasing churn).
	procBase map[int]*stats.MovingMean
	// lastRate/staleFor implement hold-last-good: the last sane measured
	// rate per thread, and for how many consecutive quanta the thread's
	// reading has been missing or rejected.
	lastRate map[platform.ThreadID]float64
	staleFor map[platform.ThreadID]int
	// sanitized accumulates sanitizer actions over the run.
	sanitized SanitizeStats
}

// NewObserver builds an observer over p. alpha is the EWMA weight for
// both CoreBW and capability; missTh the M/C miss-ratio boundary.
func NewObserver(p platform.Platform, alpha, missTh float64) *Observer {
	return newObserver(p, alpha, missTh, false)
}

// newObserver additionally selects the contention metric (ablation).
func newObserver(p platform.Platform, alpha, missTh float64, useIPC bool) *Observer {
	n := p.Topology().NumCores()
	bw := make([]*stats.MovingMean, n)
	cp := make([]*stats.MovingMean, n)
	for i := range bw {
		bw[i] = stats.NewMovingMean(alpha)
		cp[i] = stats.NewMovingMean(alpha)
	}
	return &Observer{
		p:        p,
		missTh:   missTh,
		useIPC:   useIPC,
		capacity: p.MemCapacity(),
		coreBW:   bw,
		capab:    cp,
		class:    make(map[platform.ThreadID]ThreadClass),
		procBase: make(map[int]*stats.MovingMean),
		lastRate: make(map[platform.ThreadID]float64),
		staleFor: make(map[platform.ThreadID]int),
	}
}

// SanitizedTotal returns the sanitizer action counts accumulated over
// the run so far.
func (o *Observer) SanitizedTotal() SanitizeStats { return o.sanitized }

// Observe samples the counters at time now and derives the quantum's
// Observation. The first call of a run yields Interval 0 and no rates;
// Dike skips scheduling on it.
//
// Readings are sanitized on the way in: samples that are missing
// (counter read lost) or physically implausible (NaN, ±Inf, negative)
// are rejected and the thread's last sane rate is held in their place,
// up to maxStaleQuanta; finite rates beyond the memory controller's
// service capacity are clamped to it. Held threads are marked in
// Observation.Held and excluded from the capability and baseline
// estimators so garbage never enters the closed loop.
func (o *Observer) Observe(now sim.Time) (*Observation, error) {
	sample := o.p.Sample(now)
	alive := o.p.Alive()
	sort.Slice(alive, func(i, j int) bool { return alive[i] < alive[j] })

	obs := &Observation{
		Now:      now,
		Sample:   sample,
		Alive:    alive,
		Class:    make(map[platform.ThreadID]ThreadClass, len(alive)),
		Rate:     make(map[platform.ThreadID]float64, len(alive)),
		Baseline: make(map[platform.ThreadID]float64, len(alive)),
		Instr:    make(map[platform.ThreadID]float64, len(alive)),
		CoreOf:   make(map[platform.ThreadID]platform.CoreID, len(alive)),
		Proc:     make(map[platform.ThreadID]int, len(alive)),
		Held:     make(map[platform.ThreadID]bool),
		HighBW:   make(map[platform.CoreID]bool),
	}

	rates := make([]float64, 0, len(alive))
	byProc := make(map[int][]float64)
	for _, id := range alive {
		delta, sampled := sample.Threads[id]
		good := sampled && delta.Sane()
		var rate float64
		if good {
			rate = delta.AccessRate()
			if o.useIPC {
				// Ablation: rank, gate and predict on IPC instead. Scaled
				// down so magnitudes are comparable to access rates.
				rate = delta.IPS() / 1000
			} else if rate > o.capacity {
				// A thread cannot miss faster than the controller serves:
				// the reading is saturated. Clamp rather than reject — the
				// direction ("very memory hungry") is still informative.
				rate = o.capacity
				obs.Sanitized.Clamped++
			}
		}
		if sample.Interval > 0 && !good {
			if !sampled {
				obs.Sanitized.Dropped++
			} else {
				obs.Sanitized.Rejected++
			}
			o.staleFor[id]++
			if o.staleFor[id] <= maxStaleQuanta {
				// Hold-last-good: the thread keeps its last sane rate.
				rate = o.lastRate[id]
			}
			obs.Held[id] = true
		} else if good {
			o.staleFor[id] = 0
			o.lastRate[id] = rate
		}
		obs.Rate[id] = rate
		rates = append(rates, rate)
		obs.Instr[id] = sample.Instr[id]
		core, err := o.p.CoreOf(id)
		if err != nil {
			return nil, fmt.Errorf("core: observing thread %d: %w", id, err)
		}
		obs.CoreOf[id] = core
		proc, err := o.p.ProcessOf(id)
		if err != nil {
			return nil, fmt.Errorf("core: observing thread %d: %w", id, err)
		}
		obs.Proc[id] = proc
		// A thread held beyond the staleness bound contributes nothing to
		// its process's demand estimate: its zero rate is absence of
		// information, not measured idleness.
		if !obs.Held[id] || o.staleFor[id] <= maxStaleQuanta {
			byProc[proc] = append(byProc[proc], rate)
		}

		// Reclassify only when the thread actually issued accesses this
		// quantum (and the reading survived sanitization); a thread
		// stalled by a migration keeps its old class.
		if good && delta.Accesses > 0 {
			if delta.MissRatio() > o.missTh {
				o.class[id] = MemoryClass
			} else {
				o.class[id] = ComputeClass
			}
		}
		obs.Class[id] = o.class[id]
	}
	o.sanitized.add(obs.Sanitized)
	obs.SystemCV = stats.CV(rates)
	procMean := make(map[int]float64, len(byProc))
	for p, rs := range byProc {
		mean := stats.Mean(rs)
		if sample.Interval > 0 {
			mm := o.procBase[p]
			if mm == nil {
				mm = stats.NewMovingMean(baselineAlpha)
				o.procBase[p] = mm
			}
			mm.Add(mean)
			mean = mm.Value()
		}
		procMean[p] = mean
		if cv := stats.CV(rs); cv > obs.Fairness {
			obs.Fairness = cv
		}
	}
	for _, id := range alive {
		obs.Baseline[id] = procMean[obs.Proc[id]]
	}

	// Fold this quantum's measurements into the per-core estimates:
	// served bandwidth (raw CoreBW) and relative capability (occupant
	// rate over its process baseline). Held threads reveal nothing about
	// their core this quantum, so they are skipped; insane or saturated
	// uncore readings are rejected or clamped like thread readings.
	if sample.Interval > 0 {
		for c := range o.coreBW {
			cd := sample.Cores[c]
			if !cd.Sane() {
				obs.Sanitized.Rejected++
				o.sanitized.Rejected++
				continue
			}
			bw := cd.Bandwidth()
			if bw > o.capacity {
				bw = o.capacity
			}
			o.coreBW[c].Add(bw)
		}
		for _, id := range alive {
			if obs.Held[id] {
				continue
			}
			base := obs.Baseline[id]
			if base < minBaseline {
				continue
			}
			c := obs.CoreOf[id]
			o.capab[int(c)].Add(obs.Rate[id] / base)
		}
	}
	obs.CoreBW = make([]float64, len(o.coreBW))
	obs.Capability = make([]float64, len(o.capab))
	for c := range o.coreBW {
		obs.CoreBW[c] = o.coreBW[c].Value()
		if o.capab[c].Count() > 0 {
			obs.Capability[c] = o.capab[c].Value()
		} else {
			// Unvisited cores are assumed average until probed.
			obs.Capability[c] = 1
		}
	}

	// Core identification: median split of capability over occupied
	// cores. Strictly-greater-than-median marks the high half so that a
	// degenerate all-equal state (cold start) classifies everything low
	// and the Selector stays quiet rather than thrashing.
	occupied := make(map[platform.CoreID]bool, len(alive))
	for _, c := range obs.CoreOf {
		occupied[c] = true
	}
	if len(occupied) > 1 {
		caps := make([]float64, 0, len(occupied))
		for c := range occupied {
			caps = append(caps, obs.Capability[c])
		}
		median := stats.Median(caps)
		for c := range occupied {
			if obs.Capability[c] > median {
				obs.HighBW[c] = true
			}
		}
	}
	return obs, nil
}

// CoreBW returns the current raw moving-mean served bandwidth of core c.
func (o *Observer) CoreBW(c platform.CoreID) float64 { return o.coreBW[int(c)].Value() }

// Capability returns the current relative capability estimate of core c
// (1.0 before any sample).
func (o *Observer) Capability(c platform.CoreID) float64 {
	if o.capab[int(c)].Count() == 0 {
		return 1
	}
	return o.capab[int(c)].Value()
}
