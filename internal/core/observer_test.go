package core

import (
	"testing"

	"dike/internal/platform"
	"dike/internal/platform/platformtest"
	"dike/internal/sched"
	"dike/internal/sim"
)

// twoClassMachine builds a machine with one memory-intensive process (8
// threads) and one compute-intensive process (8 threads), spread half on
// fast and half on slow cores.
func twoClassMachine(t *testing.T) *platformtest.Machine {
	t.Helper()
	m := platformtest.NewMachine(platformtest.DefaultConfig())
	mem := platformtest.Demand{AccessesPerWork: 10, MissRatio: 0.5}
	comp := platformtest.Demand{AccessesPerWork: 3, MissRatio: 0.03}
	fast := m.Topology().FastCores()
	slow := m.Topology().SlowCores()
	for i := 0; i < 8; i++ {
		if err := m.AddThread(platform.ThreadID(i), 0, platformtest.ConstProgram{Work: 1e6, Demand: mem}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 8; i < 16; i++ {
		if err := m.AddThread(platform.ThreadID(i), 1, platformtest.ConstProgram{Work: 1e6, Demand: comp}); err != nil {
			t.Fatal(err)
		}
	}
	// Half of each process on each core kind, one thread per physical
	// core to keep SMT out of the picture.
	for i := 0; i < 4; i++ {
		m.Place(platform.ThreadID(i), fast[i*2])
		m.Place(platform.ThreadID(i+4), slow[i*2])
		m.Place(platform.ThreadID(i+8), fast[8+i*2])
		m.Place(platform.ThreadID(i+12), slow[8+i*2])
	}
	return m
}

func observeAfter(t *testing.T, m *platformtest.Machine, o *Observer, from, to sim.Time) *Observation {
	t.Helper()
	for now := from; now < to; now++ {
		m.Step(now, 1)
	}
	return mustObserve(t, o, to)
}

func mustObserve(t *testing.T, o *Observer, now sim.Time) *Observation {
	t.Helper()
	obs, err := o.Observe(now)
	if err != nil {
		t.Fatal(err)
	}
	return obs
}

func TestObserverClassification(t *testing.T) {
	m := twoClassMachine(t)
	o := NewObserver(m, 0.25, 0.10)
	mustObserve(t, o, 0)
	obs := observeAfter(t, m, o, 0, 500)
	for i := 0; i < 8; i++ {
		if obs.Class[platform.ThreadID(i)] != MemoryClass {
			t.Errorf("thread %d classified %v, want M", i, obs.Class[platform.ThreadID(i)])
		}
	}
	for i := 8; i < 16; i++ {
		if obs.Class[platform.ThreadID(i)] != ComputeClass {
			t.Errorf("thread %d classified %v, want C", i, obs.Class[platform.ThreadID(i)])
		}
	}
	if obs.MemoryThreads() != 8 || obs.ComputeThreads() != 8 {
		t.Errorf("counts = %d M / %d C", obs.MemoryThreads(), obs.ComputeThreads())
	}
}

func TestObserverCapabilityIdentifiesFastCores(t *testing.T) {
	m := twoClassMachine(t)
	o := NewObserver(m, 0.25, 0.10)
	mustObserve(t, o, 0)
	var obs *Observation
	last := sim.Time(0)
	for q := 1; q <= 6; q++ {
		obs = observeAfter(t, m, o, last, sim.Time(q*500))
		last = sim.Time(q * 500)
	}
	topo := m.Topology()
	// Every occupied fast core must estimate a higher capability than
	// every occupied slow core.
	minFast, maxSlow := 1e9, -1e9
	for _, id := range obs.Alive {
		c := obs.CoreOf[id]
		cap := obs.Capability[c]
		if topo.Core(c).Kind == platform.FastCore {
			if cap < minFast {
				minFast = cap
			}
		} else if cap > maxSlow {
			maxSlow = cap
		}
	}
	if minFast <= maxSlow {
		t.Errorf("capability overlap: min fast %v <= max slow %v", minFast, maxSlow)
	}
	// And the HighBW partition therefore marks exactly the fast cores.
	for _, id := range obs.Alive {
		c := obs.CoreOf[id]
		isFast := topo.Core(c).Kind == platform.FastCore
		if obs.HighBW[c] != isFast {
			t.Errorf("core %d highBW=%v, kind=%v", c, obs.HighBW[c], topo.Core(c).Kind)
		}
	}
}

func TestObserverBaselinePerProcess(t *testing.T) {
	m := twoClassMachine(t)
	o := NewObserver(m, 0.25, 0.10)
	mustObserve(t, o, 0)
	obs := observeAfter(t, m, o, 0, 500)
	// All threads of one process share a baseline.
	b0 := obs.Baseline[0]
	for i := 1; i < 8; i++ {
		if obs.Baseline[platform.ThreadID(i)] != b0 {
			t.Error("process baselines differ across siblings")
		}
	}
	// Memory baseline far above compute baseline.
	if obs.Baseline[0] < 5*obs.Baseline[8] {
		t.Errorf("baselines not separated: %v vs %v", obs.Baseline[0], obs.Baseline[8])
	}
}

func TestObserverFairnessGate(t *testing.T) {
	m := twoClassMachine(t)
	o := NewObserver(m, 0.25, 0.10)
	mustObserve(t, o, 0)
	obs := observeAfter(t, m, o, 0, 500)
	// Threads of each process straddle fast/slow cores: rates within a
	// process differ, so the gate must read unfair.
	if obs.Fairness < 0.1 {
		t.Errorf("gate = %v, want unfair (>0.1)", obs.Fairness)
	}
	// Instr is cumulative and positive.
	for _, id := range obs.Alive {
		if obs.Instr[id] <= 0 {
			t.Errorf("thread %d instr = %v", id, obs.Instr[id])
		}
	}
}

func TestObserverFirstSampleInert(t *testing.T) {
	m := twoClassMachine(t)
	o := NewObserver(m, 0.25, 0.10)
	obs := mustObserve(t, o, 0)
	if obs.Sample.Interval != 0 {
		t.Error("first sample has a nonzero interval")
	}
	for c := range obs.Capability {
		if obs.Capability[c] != 1 {
			t.Error("capability moved before any measurement")
		}
	}
}

func TestObserverStalledThreadKeepsClass(t *testing.T) {
	m := twoClassMachine(t)
	o := NewObserver(m, 0.25, 0.10)
	mustObserve(t, o, 0)
	obs := observeAfter(t, m, o, 0, 500)
	if obs.Class[0] != MemoryClass {
		t.Fatal("setup: thread 0 should be M")
	}
	// Freeze thread 0 with a long migration stall, then observe over a
	// window where it issues nothing: classification must persist.
	cfg := m.Config()
	_ = cfg
	dest := m.Topology().SlowCores()[9]
	if err := m.Migrate(0, dest, 500); err != nil {
		t.Fatal(err)
	}
	// Observe a window shorter than the stall.
	m.Step(500, 1)
	obs = mustObserve(t, o, 502)
	if obs.Class[0] != MemoryClass {
		t.Error("stalled thread lost its classification")
	}
}

var _ = sched.Sample{} // keep the import meaningful if helpers change

func TestObserverGetters(t *testing.T) {
	m := twoClassMachine(t)
	o := NewObserver(m, 0.25, 0.10)
	// Before any sample: raw CoreBW 0, capability neutral 1.
	if o.CoreBW(0) != 0 {
		t.Errorf("CoreBW before samples = %v", o.CoreBW(0))
	}
	if o.Capability(0) != 1 {
		t.Errorf("Capability before samples = %v", o.Capability(0))
	}
	mustObserve(t, o, 0)
	observeAfter(t, m, o, 0, 500)
	// A core hosting a memory thread now reports served bandwidth.
	core, _ := m.CoreOf(0)
	if o.CoreBW(core) <= 0 {
		t.Errorf("CoreBW after samples = %v", o.CoreBW(core))
	}
	if o.Capability(core) <= 0 {
		t.Errorf("Capability after samples = %v", o.Capability(core))
	}
}

func TestObserverIPCMetric(t *testing.T) {
	m := twoClassMachine(t)
	o := newObserver(m, 0.25, 0.10, true)
	mustObserve(t, o, 0)
	obs := observeAfter(t, m, o, 0, 500)
	// Under IPC, compute threads score HIGHER than memory threads — the
	// inversion the paper warns about.
	if obs.Rate[8] <= obs.Rate[0] {
		t.Errorf("IPC metric: compute %v not above memory %v", obs.Rate[8], obs.Rate[0])
	}
	// Classification is metric-independent (still miss-ratio based).
	if obs.Class[0] != MemoryClass || obs.Class[8] != ComputeClass {
		t.Error("classification changed under IPC metric")
	}
}
