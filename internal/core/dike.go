package core

import (
	"math"
	"sort"

	"dike/internal/platform"
	"dike/internal/sched"
	"dike/internal/sim"
	"dike/internal/stats"
)

// Dike is the paper's scheduler as a simulation policy. Construct with
// New, then hand to the simulation engine; it observes the platform's
// performance counters each quantum and re-maps threads to cores through
// affinity swaps.
type Dike struct {
	p   platform.Platform
	cfg Config

	obs *Observer
	prd Predictor
	dec *Decider
	mig *Migrator
	opt *Optimizer

	swapSize int
	quanta   sim.Time

	placed     bool
	quantumIdx int

	// Prediction bookkeeping: what the predictor expected each thread's
	// access rate to be this quantum (set at the end of the previous
	// quantum), and accumulated per-thread error statistics.
	predNext map[platform.ThreadID]float64
	errSum   map[platform.ThreadID]float64
	errCount map[platform.ThreadID]int
	series   []ErrPoint

	history []QuantumRecord

	// Watchdog state: fairness-collapse detection with revert to the
	// last-known-good ⟨swapSize, quantaLength⟩ pair.
	wdPrev    float64
	wdHave    bool
	wdBad     int
	lkgSwap   int
	lkgQuanta sim.Time
	wdTrips   int

	// Fairness-gate feed for the power subsystem: the core kind hosting
	// the slowest thread while the gate is open (see LimitingKind).
	limKind platform.CoreKind
	limOK   bool
}

// Watchdog tuning: the gate value must grow by more than watchdogEps
// relative to the previous quantum for watchdogK consecutive quanta
// (all above the fairness threshold) before the watchdog declares a
// fairness collapse and reverts the scheduling parameters.
const (
	watchdogK   = 5
	watchdogEps = 0.02
)

// ErrPoint is one quantum's mean prediction error (Fig 8's series).
type ErrPoint struct {
	Time sim.Time
	// Mean is the mean signed relative error across threads observed
	// this quantum; positive = overestimation.
	Mean float64
}

// QuantumRecord captures one scheduling decision for traces and tests.
type QuantumRecord struct {
	Time       sim.Time
	Fairness   float64 // gate value (mean per-process access-rate CV)
	SwapSize   int
	Quanta     sim.Time
	Candidates int // pairs proposed by the Selector
	Accepted   int // pairs surviving the Decider
	MemThreads int
	Alive      int
	// Held counts threads whose counter reading was dropped or rejected
	// this quantum and whose rate is the held last-good value.
	Held int
}

// errFloor and errClamp bound the per-quantum relative prediction error:
// rates below errFloor (misses/ms) are too small for a meaningful
// relative comparison, and single-quantum errors are clamped so one
// burst cannot dominate a thread's run average.
const (
	errFloor = 0.2
	errClamp = 1.5
)

// New builds a Dike policy over platform p with cfg (zero-value fields take
// defaults from DefaultConfig).
func New(p platform.Platform, cfg Config) (*Dike, error) {
	def := DefaultConfig()
	if cfg.QuantaLength == 0 {
		cfg.QuantaLength = def.QuantaLength
	}
	if cfg.SwapSize == 0 {
		cfg.SwapSize = def.SwapSize
	}
	if cfg.FairnessThreshold == 0 {
		cfg.FairnessThreshold = def.FairnessThreshold
	}
	if cfg.MissRatioThreshold == 0 {
		cfg.MissRatioThreshold = def.MissRatioThreshold
	}
	if cfg.CoreBWAlpha == 0 {
		cfg.CoreBWAlpha = def.CoreBWAlpha
	}
	if cfg.SwapOH == 0 {
		cfg.SwapOH = def.SwapOH
	}
	if cfg.AdaptEvery == 0 {
		cfg.AdaptEvery = def.AdaptEvery
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Dike{
		p:        p,
		cfg:      cfg,
		obs:      newObserver(p, cfg.CoreBWAlpha, cfg.MissRatioThreshold, cfg.UseIPCMetric),
		prd:      Predictor{SwapOH: cfg.SwapOH},
		dec:      NewDecider(),
		mig:      NewMigrator(p),
		swapSize: cfg.SwapSize,
		quanta:   cfg.QuantaLength,
		predNext: make(map[platform.ThreadID]float64),
		errSum:   make(map[platform.ThreadID]float64),
		errCount: make(map[platform.ThreadID]int),
	}
	d.dec.DisableProfitGate = cfg.DisableProfitGate
	d.dec.DisableCooldown = cfg.DisableCooldown
	if cfg.Goal != AdaptNone {
		d.opt = NewOptimizer(cfg.Goal, cfg.SwapSize, cfg.QuantaLength, true)
	}
	// The validated starting configuration is the first last-known-good.
	d.lkgSwap, d.lkgQuanta = cfg.SwapSize, cfg.QuantaLength
	return d, nil
}

// MustNew is New for known-valid configurations; it panics on error.
func MustNew(p platform.Platform, cfg Config) *Dike {
	d, err := New(p, cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Name implements sched.Policy: "dike", "dike-af", "dike-ap" or
// "dike-ea".
func (d *Dike) Name() string {
	switch d.cfg.Goal {
	case AdaptFairness:
		return "dike-af"
	case AdaptPerformance:
		return "dike-ap"
	case AdaptEnergy:
		return "dike-ea"
	default:
		return "dike"
	}
}

// QuantaLength implements sched.Policy; adaptive modes change it as the
// Optimizer retunes.
func (d *Dike) QuantaLength() sim.Time { return d.quanta }

// SwapSize returns the current swap size (adaptive modes change it).
func (d *Dike) SwapSize() int { return d.swapSize }

// Decider exposes the decider for ablation configuration; tests and the
// ablation benches flip its Disable flags before a run starts.
func (d *Dike) Decider() *Decider { return d.dec }

// History returns the per-quantum decision records.
func (d *Dike) History() []QuantumRecord { return d.history }

// WatchdogTrips returns how many times the fairness watchdog reverted
// the scheduler's parameters to the last-known-good pair.
func (d *Dike) WatchdogTrips() int { return d.wdTrips }

// FailedSwaps returns how many accepted swaps did not take effect on
// the platform (silently dropped migrations, detected and rolled back).
func (d *Dike) FailedSwaps() int { return d.mig.FailedSwaps() }

// SanitizedTotal returns the run totals of counter readings the
// Observer dropped, rejected or clamped.
func (d *Dike) SanitizedTotal() SanitizeStats { return d.obs.SanitizedTotal() }

// Quantum implements sched.Policy: one pass of the Figure 3 pipeline.
func (d *Dike) Quantum(now sim.Time) error {
	if !d.placed {
		if err := sched.SpreadPlacement(d.p, d.cfg.PlacementSeed); err != nil {
			return err
		}
		d.placed = true
		// Establish the counter baseline; no decisions yet.
		_, err := d.obs.Observe(now)
		return err
	}

	obs, err := d.obs.Observe(now)
	if err != nil {
		return err
	}
	if obs.Sample.Interval <= 0 || len(obs.Alive) == 0 {
		return nil
	}
	d.quantumIdx++
	d.recordErrors(obs)
	d.watchdog(obs)

	d.updateLimiting(obs)

	// Adaptation (Optimizer), every AdaptEvery quanta.
	if d.opt != nil && d.quantumIdx%d.cfg.AdaptEvery == 0 {
		goal := obs.Fairness
		switch d.cfg.Goal {
		case AdaptPerformance:
			goal = d.instructionRate(obs)
		case AdaptEnergy:
			goal = d.energyMetric(obs)
		}
		d.opt.Step(obs, obs.Fairness, d.cfg.FairnessThreshold, goal)
		d.swapSize, d.quanta = d.opt.Params()
	}

	rec := QuantumRecord{
		Time:       now,
		Fairness:   obs.Fairness,
		SwapSize:   d.swapSize,
		Quanta:     d.quanta,
		MemThreads: obs.MemoryThreads(),
		Alive:      len(obs.Alive),
		Held:       len(obs.Held),
	}

	// Default prediction: threads that stay put keep their access rate.
	next := make(map[platform.ThreadID]float64, len(obs.Alive))
	for _, id := range obs.Alive {
		next[id] = obs.Rate[id]
	}

	// Fairness gate: act only when the system is unfair.
	if obs.Fairness >= d.cfg.FairnessThreshold {
		pairs := SelectPairs(obs, d.swapSize)
		if d.cfg.DisableEqualization {
			kept := pairs[:0]
			for _, p := range pairs {
				if !p.Equalize {
					kept = append(kept, p)
				}
			}
			pairs = kept
		}
		rec.Candidates = len(pairs)
		preds := make([]Prediction, 0, len(pairs))
		for _, p := range pairs {
			preds = append(preds, d.prd.Predict(obs, p, d.quanta))
		}
		d.dec.SetQuanta(d.quanta)
		accepted := d.dec.Filter(preds, d.quantumIdx)
		rec.Accepted = len(accepted)
		if _, err := d.mig.Apply(accepted, d.dec, d.quantumIdx, now); err != nil {
			return err
		}
		// Swapped threads are predicted to take over their destination
		// core's bandwidth (Eqn 1's model).
		for _, p := range accepted {
			next[p.Pair.Low] = p.PredLowRate
			next[p.Pair.High] = p.PredHighRate
		}
	}
	d.predNext = next
	d.history = append(d.history, rec)
	return nil
}

// watchdog tracks the fairness gate across quanta. While the system is
// fair it records the current parameters as last-known-good; when the
// gate diverges — grows by more than watchdogEps per quantum for
// watchdogK consecutive quanta — it reverts ⟨swapSize, quantaLength⟩ to
// the recorded pair. Adaptive retuning gone wrong (or faults corrupting
// the adaptation inputs) is thereby bounded: the scheduler falls back
// to a configuration that demonstrably kept the system fair.
func (d *Dike) watchdog(obs *Observation) {
	if obs.Fairness < d.cfg.FairnessThreshold {
		// Healthy. Remember what got us here.
		d.lkgSwap, d.lkgQuanta = d.swapSize, d.quanta
		d.wdBad = 0
		d.wdHave = false
		return
	}
	if d.wdHave && obs.Fairness > d.wdPrev*(1+watchdogEps) {
		d.wdBad++
	} else {
		d.wdBad = 0
	}
	d.wdPrev = obs.Fairness
	d.wdHave = true
	if d.wdBad < watchdogK {
		return
	}
	// Fairness collapse: revert to the last-known-good parameters.
	d.wdTrips++
	d.wdBad = 0
	d.wdHave = false
	if d.opt != nil {
		d.opt.ForceParams(d.lkgSwap, d.lkgQuanta)
		d.swapSize, d.quanta = d.opt.Params()
	} else {
		d.swapSize, d.quanta = d.lkgSwap, d.lkgQuanta
	}
}

// recordErrors folds this quantum's measured rates against the previous
// quantum's predictions. Threads whose reading was dropped or rejected
// this quantum (obs.Held) are skipped: their Rate is a held estimate,
// not a measurement, and scoring the predictor against it — or letting
// it learn from it — would poison the accuracy statistics with garbage.
func (d *Dike) recordErrors(obs *Observation) {
	if len(d.predNext) == 0 {
		return
	}
	sum, n := 0.0, 0
	for _, id := range obs.Alive {
		pred, ok := d.predNext[id]
		if !ok || obs.Held[id] {
			continue
		}
		actual := obs.Rate[id]
		denom := math.Max(actual, errFloor)
		err := stats.Clamp((pred-actual)/denom, -errClamp, errClamp)
		d.errSum[id] += err
		d.errCount[id]++
		sum += err
		n++
	}
	if n > 0 {
		d.series = append(d.series, ErrPoint{Time: obs.Now, Mean: sum / float64(n)})
	}
}

// updateLimiting refreshes the fairness-gate feed: while the gate is
// open (system unfair), the limiting kind is the type of the core
// hosting the slowest thread — the thread whose measured access rate is
// the smallest fraction of its process's intrinsic demand. Boosting
// that kind's frequency is the power budget's highest-leverage spend.
// Ties break to the lowest thread id (obs.Alive is ascending).
func (d *Dike) updateLimiting(obs *Observation) {
	d.limOK = false
	if obs.Fairness < d.cfg.FairnessThreshold {
		return
	}
	best := platform.ThreadID(0)
	bestSlow := 0.0
	found := false
	for _, id := range obs.Alive {
		base := obs.Baseline[id]
		if base <= 0 || obs.Held[id] {
			continue
		}
		slow := obs.Rate[id] / base
		if !found || slow < bestSlow {
			best, bestSlow, found = id, slow, true
		}
	}
	if !found {
		return
	}
	core, ok := obs.CoreOf[best]
	if !ok {
		return
	}
	d.limKind = d.p.Topology().Core(core).Kind
	d.limOK = true
}

// LimitingKind implements the power subsystem's fairness feed: the core
// kind currently limiting the slowest thread, valid only while the
// fairness gate is open. The feed is recomputed from observations, not
// recorded — a replayed Dike derives the identical sequence.
func (d *Dike) LimitingKind() (platform.CoreKind, bool) { return d.limKind, d.limOK }

// energyMetric is the Optimizer's energy goal metric: the fairness gate
// value weighted by the platform's power draw (both lower-better).
// Platforms without an energy meter degrade to plain fairness.
func (d *Dike) energyMetric(obs *Observation) float64 {
	if pc, ok := d.p.(platform.PowerControl); ok {
		if w := pc.PowerSample().Total(); w > 0 {
			return obs.Fairness * w
		}
	}
	return obs.Fairness
}

// instructionRate is the Optimizer's performance goal metric: aggregate
// retired instructions per ms this quantum.
func (d *Dike) instructionRate(obs *Observation) float64 {
	if obs.Sample.Interval <= 0 {
		return 0
	}
	total := 0.0
	for _, id := range obs.Alive {
		// Instructions are PMU-visible; work units are not.
		total += obs.Sample.Threads[id].Instructions
	}
	return total / obs.Sample.Interval
}

// PredStats summarises prediction accuracy over a run.
type PredStats struct {
	// PerThread is each thread's run-averaged signed relative error.
	PerThread map[platform.ThreadID]float64
}

// MinAvgMax returns the minimum, mean and maximum of the per-thread
// averaged errors (Fig 7's three series). Zeroes if no data. Values are
// folded in ascending thread-id order: float summation is not
// associative, so map-iteration order would make the mean's last bit
// nondeterministic — which record/replay verification compares.
func (ps PredStats) MinAvgMax() (lo, avg, hi float64) {
	if len(ps.PerThread) == 0 {
		return 0, 0, 0
	}
	ids := make([]platform.ThreadID, 0, len(ps.PerThread))
	for id := range ps.PerThread {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	vals := make([]float64, len(ids))
	for i, id := range ids {
		vals[i] = ps.PerThread[id]
	}
	lo, _ = stats.Min(vals)
	hi, _ = stats.Max(vals)
	return lo, stats.Mean(vals), hi
}

// PredictionStats returns the per-thread averaged prediction errors
// accumulated so far.
func (d *Dike) PredictionStats() PredStats {
	out := PredStats{PerThread: make(map[platform.ThreadID]float64, len(d.errSum))}
	for id, sum := range d.errSum {
		if c := d.errCount[id]; c > 0 {
			out.PerThread[id] = sum / float64(c)
		}
	}
	return out
}

// ErrorSeries returns the per-quantum mean prediction error time series.
func (d *Dike) ErrorSeries() []ErrPoint { return d.series }
