package core

import (
	"sort"

	"dike/internal/platform"
)

// Pair is a candidate swap: a low-access thread and a high-access thread
// (the paper's ⟨t_l, t_h⟩).
type Pair struct {
	Low  platform.ThreadID
	High platform.ThreadID
	// Equalize marks an intra-process fairness pair: High is a lagging
	// sibling on a weaker core, Low its most-ahead sibling on a stronger
	// one. The Decider judges these on fairness benefit rather than
	// access-rate profit (§III-D: "each swap benefits fairness or
	// performance").
	Equalize bool
}

// Selector tuning constants.
const (
	// PairDeadband is the minimum relative demand gap between the two
	// members of a cross-process pair. Swapping threads with
	// near-identical demand cannot improve the mapping; the apparent
	// violation is measurement noise at the placement boundary.
	PairDeadband = 0.15
	// ProgressDeadband is the minimum relative progress imbalance
	// (retired instructions, normalised by the process mean) for an
	// intra-process pair. Siblings within it are already fair.
	ProgressDeadband = 0.03
	// EqualizeCapMargin is how much stronger the ahead-sibling's core
	// must be (relative capability) before an equalization swap is
	// worth its migration cost.
	EqualizeCapMargin = 1.05
	// baselineTie is the relative demand difference under which two
	// threads are considered demand-tied and ordered by progress.
	baselineTie = 1e-9
)

// Ranking is the Selector's view of one quantum: threads ordered by
// demand and the placement boundary implied by the number of occupied
// high-bandwidth cores. The paper's ideal mapping "has high-access
// threads bound to high bandwidth cores and low-access threads bound to
// low bandwidth cores"; with k high-bandwidth cores occupied, the ideal
// mapping puts exactly the k most demanding threads on them. A violator
// is a thread on the wrong side of that boundary for its current core.
//
// Two reproduction-motivated refinements over a literal reading of
// Algorithm 1 (recorded in DESIGN.md):
//
//   - Threads are ordered by *demand baseline* (their process's mean
//     access rate) rather than their individual measured rate. The
//     individual rate is endogenous to placement — being on a slow core
//     depresses exactly the rate that would justify staying there — so
//     rate-ranked placement is self-fulfilling and never rotates.
//   - Demand ties (homogeneous siblings) are ordered by progress
//     deficit: the sibling that has retired the fewest instructions
//     ranks highest and therefore claims a high-bandwidth core first.
//     This realises the paper's "Dike will naturally migrate threads so
//     that the rule is obeyed, on average, across several quanta": when
//     a process straddles the boundary, its lagging threads rotate onto
//     fast cores until runtimes equalise.
type Ranking struct {
	// Sorted lists alive threads by ascending demand rank.
	Sorted []platform.ThreadID
	// Boundary is the index in Sorted at which the high-demand region
	// begins: threads at index >= Boundary deserve high-bandwidth cores.
	Boundary int
	obs      *Observation
	// procMean caches each process's mean retired-instruction count.
	// admissible is called from SelectPairs' pair loop; recomputing the
	// mean there made pair selection O(threads²), which dominates
	// decision cost on 1024-core machines.
	procMean map[int]float64
}

// NewRanking orders obs's alive threads and locates the placement
// boundary. All orderings break final ties by thread id, so runs are
// deterministic.
func NewRanking(obs *Observation) *Ranking {
	sorted := make([]platform.ThreadID, len(obs.Alive))
	copy(sorted, obs.Alive)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		ba, bb := obs.Baseline[a], obs.Baseline[b]
		if diff := ba - bb; diff < -baselineTie || diff > baselineTie {
			return ba < bb
		}
		// Demand tie: more progress sorts lower (less deserving of a
		// fast core). Only meaningful within a process, but harmless as
		// a global rule since cross-process exact ties are accidental.
		ia, ib := obs.Instr[a], obs.Instr[b]
		if ia != ib {
			return ia > ib
		}
		return a < b
	})
	// Count occupied high-bandwidth cores: that is how many threads the
	// ideal mapping can put on the high side.
	k := 0
	seen := make(map[platform.CoreID]bool, len(obs.CoreOf))
	for _, c := range obs.CoreOf {
		if !seen[c] {
			seen[c] = true
			if obs.HighBW[c] {
				k++
			}
		}
	}
	boundary := len(sorted) - k
	if boundary < 0 {
		boundary = 0
	}
	// Per-process progress means, accumulated in obs.Alive order so the
	// float summation order matches the former per-call computation.
	sum := make(map[int]float64)
	cnt := make(map[int]int)
	for _, id := range obs.Alive {
		sum[obs.Proc[id]] += obs.Instr[id]
		cnt[obs.Proc[id]]++
	}
	mean := make(map[int]float64, len(sum))
	for p, s := range sum {
		mean[p] = s / float64(cnt[p])
	}
	return &Ranking{Sorted: sorted, Boundary: boundary, obs: obs, procMean: mean}
}

// HighDeserving reports whether the thread at sorted index i belongs in
// the high-demand region.
func (r *Ranking) HighDeserving(i int) bool { return i >= r.Boundary }

// Violator reports whether the thread at sorted index i breaks the
// placement rule: a high-demand thread on a low-bandwidth core, or a
// low-demand thread on a high-bandwidth core.
func (r *Ranking) Violator(i int) bool {
	onHigh := r.obs.HighBW[r.obs.CoreOf[r.Sorted[i]]]
	return r.HighDeserving(i) != onHigh
}

// admissible reports whether the candidate pair (low-side index h,
// high-side index t in r.Sorted) clears the dead-bands.
func (r *Ranking) admissible(h, t int) bool {
	lo, hi := r.Sorted[h], r.Sorted[t]
	obs := r.obs
	if obs.Proc[lo] == obs.Proc[hi] {
		// Intra-process rotation: only worthwhile if the sibling on the
		// better core is materially ahead.
		mean := r.procMean[obs.Proc[lo]]
		if mean == 0 {
			return false
		}
		return (obs.Instr[lo]-obs.Instr[hi])/mean > ProgressDeadband
	}
	bl, bh := obs.Baseline[lo], obs.Baseline[hi]
	return bh-bl > PairDeadband*bh
}

// SelectPairs implements Algorithm 1: rank the alive threads by demand,
// then walk two pointers inward pairing placement violators — the
// lowest-demand violator (a thread squatting on a high-bandwidth core)
// with the highest-demand violator (a demanding thread stuck on a
// low-bandwidth core) — until swapSize threads are covered or the
// pointers cross. Swapping such a pair repairs both placements at once.
// If every thread has the same class, pairs are formed from both ends
// regardless of the placement rule (Algorithm 1 lines 10–15).
//
// The fairness gate (skip the quantum when the system is fair) lives in
// Dike's quantum loop; SelectPairs assumes the system is already known
// to be unfair.
func SelectPairs(obs *Observation, swapSize int) []Pair {
	n := len(obs.Alive)
	if n < 2 || swapSize < 2 {
		return nil
	}
	maxPairs := swapSize / 2
	r := NewRanking(obs)

	// All threads the same type: pair from both ends regardless of the
	// placement rule.
	if sameClass(obs) {
		var pairs []Pair
		for k := 0; k < maxPairs && k < n-1-k; k++ {
			if !r.admissible(k, n-1-k) {
				continue
			}
			pairs = append(pairs, Pair{Low: r.Sorted[k], High: r.Sorted[n-1-k]})
		}
		return pairs
	}

	var pairs []Pair
	head, tail := 0, n-1
	for len(pairs) < maxPairs && head < tail {
		// Advance head to the next low-side violator.
		for head < n && !(r.Violator(head) && !r.HighDeserving(head)) {
			head++
		}
		// Retreat tail to the next high-side violator.
		for tail >= 0 && !(r.Violator(tail) && r.HighDeserving(tail)) {
			tail--
		}
		if head >= tail || head >= n || tail < 0 {
			break // pointers crossed: fewer violators than swapSize
		}
		if !r.admissible(head, tail) {
			head++ // look for a more distinct low-side candidate
			continue
		}
		pairs = append(pairs, Pair{Low: r.Sorted[head], High: r.Sorted[tail]})
		head++
		tail--
	}
	pairs = appendEqualizePairs(obs, pairs, maxPairs)
	return pairs
}

// appendEqualizePairs fills remaining pair slots with intra-process
// equalization swaps: for each process whose siblings have drifted apart
// in progress, pair the most-behind thread (High) with the most-ahead
// one (Low) when the ahead thread holds a materially stronger core.
// Swapping them hands the laggard the better core, which is how the
// placement rule is "obeyed, on average, across several quanta" even for
// imbalances the rule itself cannot see — e.g. luck in SMT-sibling
// pairings or leftover migration penalties.
func appendEqualizePairs(obs *Observation, pairs []Pair, maxPairs int) []Pair {
	if len(pairs) >= maxPairs {
		return pairs
	}
	used := make(map[platform.ThreadID]bool, 2*len(pairs))
	for _, p := range pairs {
		used[p.Low] = true
		used[p.High] = true
	}
	byProc := make(map[int][]platform.ThreadID)
	for _, id := range obs.Alive {
		if !used[id] {
			byProc[obs.Proc[id]] = append(byProc[obs.Proc[id]], id)
		}
	}
	type cand struct {
		pair   Pair
		spread float64
	}
	var cands []cand
	for _, ids := range byProc {
		if len(ids) < 2 {
			continue
		}
		ahead, behind := ids[0], ids[0]
		mean := 0.0
		for _, id := range ids {
			mean += obs.Instr[id]
			if obs.Instr[id] > obs.Instr[ahead] {
				ahead = id
			}
			if obs.Instr[id] < obs.Instr[behind] {
				behind = id
			}
		}
		mean /= float64(len(ids))
		if mean <= 0 {
			continue
		}
		spread := (obs.Instr[ahead] - obs.Instr[behind]) / mean
		if spread <= 2*ProgressDeadband {
			continue
		}
		capAhead := obs.Capability[obs.CoreOf[ahead]]
		capBehind := obs.Capability[obs.CoreOf[behind]]
		if capAhead <= capBehind*EqualizeCapMargin {
			continue
		}
		cands = append(cands, cand{pair: Pair{Low: ahead, High: behind, Equalize: true}, spread: spread})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].spread != cands[j].spread {
			return cands[i].spread > cands[j].spread
		}
		return cands[i].pair.High < cands[j].pair.High
	})
	for _, c := range cands {
		if len(pairs) >= maxPairs {
			break
		}
		pairs = append(pairs, c.pair)
	}
	return pairs
}

// sameClass reports whether every alive thread has the same class.
func sameClass(obs *Observation) bool {
	if len(obs.Alive) == 0 {
		return true
	}
	first := obs.Class[obs.Alive[0]]
	for _, id := range obs.Alive[1:] {
		if obs.Class[id] != first {
			return false
		}
	}
	return true
}
