package core

import (
	"math"
	"testing"
)

func TestPredictProfit(t *testing.T) {
	// t_l (compute, rate 0.3) on a strong core (cap 1.2); t_h (memory,
	// baseline 3, rate 2.6) stuck on a weak core (cap 0.8).
	obs := makeObs([]obsSpec{
		{id: 0, proc: 0, class: ComputeClass, rate: 0.3, baseline: 0.3, core: 0, coreHigh: true, coreCap: 1.2},
		{id: 1, proc: 1, class: MemoryClass, rate: 2.6, baseline: 3.0, core: 1, coreCap: 0.8},
	})
	p := Predictor{SwapOH: 3}
	pred := p.Predict(obs, Pair{Low: 0, High: 1}, 500)

	// t_l moves to t_h's core (cap 0.8): predicted rate 0.8*0.3 = 0.24.
	if math.Abs(pred.PredLowRate-0.24) > 1e-9 {
		t.Errorf("PredLowRate = %v, want 0.24", pred.PredLowRate)
	}
	// t_h moves to t_l's core (cap 1.2): predicted rate 1.2*3 = 3.6.
	if math.Abs(pred.PredHighRate-3.6) > 1e-9 {
		t.Errorf("PredHighRate = %v, want 3.6", pred.PredHighRate)
	}
	// Profit per Eqns 1-2 with overhead fraction 3/500.
	oh := 3.0 / 500
	wantLow := 0.24 - 0.3 - oh*0.3
	wantHigh := 3.6 - 2.6 - oh*2.6
	if math.Abs(pred.ProfitLow-wantLow) > 1e-9 {
		t.Errorf("ProfitLow = %v, want %v", pred.ProfitLow, wantLow)
	}
	if math.Abs(pred.ProfitHigh-wantHigh) > 1e-9 {
		t.Errorf("ProfitHigh = %v, want %v", pred.ProfitHigh, wantHigh)
	}
	if math.Abs(pred.Total-(wantLow+wantHigh)) > 1e-9 {
		t.Errorf("Total = %v, want %v", pred.Total, wantLow+wantHigh)
	}
	// This repair swap must be profitable.
	if pred.Total <= 0 {
		t.Errorf("repair swap unprofitable: %v", pred.Total)
	}
}

func TestPredictBadSwapNegative(t *testing.T) {
	// Swapping a memory thread from a strong core onto a weak one while a
	// compute thread takes the strong core loses access rate overall.
	obs := makeObs([]obsSpec{
		{id: 0, proc: 0, class: MemoryClass, rate: 3.6, baseline: 3.0, core: 0, coreHigh: true, coreCap: 1.2},
		{id: 1, proc: 1, class: ComputeClass, rate: 0.24, baseline: 0.3, core: 1, coreCap: 0.8},
	})
	p := Predictor{SwapOH: 3}
	pred := p.Predict(obs, Pair{Low: 1, High: 0}, 500)
	// Wait: pair is <low=compute on weak, high=memory on strong>. The
	// memory thread would move to the weak core: 0.8*3=2.4 < 3.6.
	if pred.Total >= 0 {
		t.Errorf("harmful swap has non-negative profit %v", pred.Total)
	}
}

func TestPredictOverheadScalesWithQuanta(t *testing.T) {
	obs := makeObs([]obsSpec{
		{id: 0, proc: 0, rate: 1, baseline: 1, core: 0, coreCap: 1},
		{id: 1, proc: 1, rate: 1, baseline: 1, core: 1, coreCap: 1},
	})
	p := Predictor{SwapOH: 10}
	short := p.Predict(obs, Pair{Low: 0, High: 1}, 100)
	long := p.Predict(obs, Pair{Low: 0, High: 1}, 1000)
	// Identical cores: profit is pure overhead; shorter quanta pay
	// proportionally more (Eqn 2).
	if short.Total >= long.Total {
		t.Errorf("short-quantum profit %v not below long-quantum %v", short.Total, long.Total)
	}
	ratio := short.Total / long.Total
	if math.Abs(ratio-10) > 1e-6 {
		t.Errorf("overhead ratio = %v, want 10", ratio)
	}
}

func TestPredictZeroQuantaNoOverhead(t *testing.T) {
	obs := makeObs([]obsSpec{
		{id: 0, proc: 0, rate: 1, baseline: 1, core: 0, coreCap: 1},
		{id: 1, proc: 1, rate: 1, baseline: 1, core: 1, coreCap: 1},
	})
	p := Predictor{SwapOH: 10}
	pred := p.Predict(obs, Pair{Low: 0, High: 1}, 0)
	if pred.Total != 0 {
		t.Errorf("zero quanta total = %v, want 0 (no overhead term)", pred.Total)
	}
}

func TestObservationPredictRate(t *testing.T) {
	obs := makeObs([]obsSpec{
		{id: 0, proc: 0, rate: 2, baseline: 2.5, core: 0, coreCap: 1.4},
	})
	if got := obs.PredictRate(0, 0); math.Abs(got-3.5) > 1e-9 {
		t.Errorf("PredictRate = %v, want 3.5", got)
	}
}
