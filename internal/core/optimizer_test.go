package core

import (
	"testing"

	"dike/internal/platform"
)

// obsWithMix builds a minimal observation with the given M/C thread mix.
func obsWithMix(mem, comp int) *Observation {
	var specs []obsSpec
	id := 0
	for i := 0; i < mem; i++ {
		specs = append(specs, obsSpec{id: platform.ThreadID(id), proc: 0, class: MemoryClass, rate: 3, baseline: 3, core: platform.CoreID(id)})
		id++
	}
	for i := 0; i < comp; i++ {
		specs = append(specs, obsSpec{id: platform.ThreadID(id), proc: 1, class: ComputeClass, rate: 0.2, baseline: 0.2, core: platform.CoreID(id)})
		id++
	}
	return makeObs(specs)
}

func TestClassifyWorkload(t *testing.T) {
	cases := []struct {
		mem, comp int
		want      WorkloadType
	}{
		{20, 20, TypeB},  // true balance
		{24, 16, TypeB},  // balanced Table II mix with kmeans counted M
		{12, 28, TypeUC}, // unbalanced compute
		{32, 8, TypeUM},  // unbalanced memory
	}
	for _, c := range cases {
		if got := classifyWorkload(obsWithMix(c.mem, c.comp)); got != c.want {
			t.Errorf("%dM/%dC = %v, want %v", c.mem, c.comp, got, c.want)
		}
	}
	if classifyWorkload(makeObs(nil)) != TypeB {
		t.Error("empty observation should default to B")
	}
}

func TestWorkloadTypeString(t *testing.T) {
	if TypeB.String() != "B" || TypeUC.String() != "UC" || TypeUM.String() != "UM" {
		t.Error("type strings wrong")
	}
}

// step runs the optimizer once with an unfair system and a flat metric.
func step(o *Optimizer, obs *Observation) {
	goal := 0.5 // flat metric; guard never triggers
	o.Step(obs, 0.5, 0.1, goal)
}

func TestOptimizerFairnessRules(t *testing.T) {
	// Algorithm 2, fairness goal.
	cases := []struct {
		mix        *Observation
		steps      int
		wantSwap   int
		wantQuanta int64
	}{
		// B: decrease quanta to the floor of 100; swapSize untouched.
		{obsWithMix(20, 20), 5, 8, 100},
		// UC: swapSize up to 16, quanta floored at 200.
		{obsWithMix(12, 28), 6, 16, 200},
		// UM: swapSize up, quanta floored at 500.
		{obsWithMix(32, 8), 6, 16, 500},
	}
	for i, c := range cases {
		o := NewOptimizer(AdaptFairness, 8, 500, false)
		for s := 0; s < c.steps; s++ {
			step(o, c.mix)
		}
		ss, q := o.Params()
		if ss != c.wantSwap || q.Millis() != c.wantQuanta {
			t.Errorf("case %d: params = ⟨%d,%d⟩, want ⟨%d,%d⟩", i, ss, q.Millis(), c.wantSwap, c.wantQuanta)
		}
	}
}

func TestOptimizerPerformanceRules(t *testing.T) {
	cases := []struct {
		mix        *Observation
		wantSwap   int
		wantQuanta int64
	}{
		{obsWithMix(20, 20), 8, 1000},  // B: quanta up
		{obsWithMix(12, 28), 16, 1000}, // UC: swapSize and quanta up
		{obsWithMix(32, 8), 8, 1000},   // UM: quanta up only
	}
	for i, c := range cases {
		o := NewOptimizer(AdaptPerformance, 8, 500, false)
		for s := 0; s < 6; s++ {
			step(o, c.mix)
		}
		ss, q := o.Params()
		if ss != c.wantSwap || q.Millis() != c.wantQuanta {
			t.Errorf("case %d: params = ⟨%d,%d⟩, want ⟨%d,%d⟩", i, ss, q.Millis(), c.wantSwap, c.wantQuanta)
		}
	}
}

func TestOptimizerOneUnitPerInvocation(t *testing.T) {
	// "updating quantaLength from 100 to 1000 milliseconds requires
	// calling optimizer for 3 times."
	o := NewOptimizer(AdaptPerformance, 8, 100, false)
	mix := obsWithMix(32, 8) // UM: quanta up only
	for calls := 1; calls <= 3; calls++ {
		step(o, mix)
		_, q := o.Params()
		want := QuantaLevels[calls]
		if q != want {
			t.Fatalf("after %d calls quanta = %v, want %v", calls, q, want)
		}
	}
}

func TestOptimizerFairSystemNoChange(t *testing.T) {
	o := NewOptimizer(AdaptFairness, 8, 500, false)
	o.Step(obsWithMix(20, 20), 0.05, 0.1, 0.05) // fair: below θf
	ss, q := o.Params()
	if ss != 8 || q != 500 {
		t.Error("optimizer moved while system was fair")
	}
}

func TestOptimizerNoneGoalInert(t *testing.T) {
	o := NewOptimizer(AdaptNone, 8, 500, false)
	step(o, obsWithMix(20, 20))
	ss, q := o.Params()
	if ss != 8 || q != 500 {
		t.Error("AdaptNone optimizer moved")
	}
}

func TestOptimizerGuardReverts(t *testing.T) {
	o := NewOptimizer(AdaptFairness, 8, 500, true)
	mix := obsWithMix(20, 20)
	// First step establishes the metric and moves quanta 500 -> 200.
	o.Step(mix, 0.5, 0.1, 0.30)
	_, q := o.Params()
	if q != 200 {
		t.Fatalf("first step quanta = %v, want 200", q)
	}
	// The metric got much worse (fairness goal: higher is worse): the
	// guard must revert to 500 and hold.
	o.Step(mix, 0.5, 0.1, 0.60)
	_, q = o.Params()
	if q != 500 {
		t.Fatalf("guard did not revert: quanta = %v", q)
	}
	// During the hold no new steps happen.
	o.Step(mix, 0.5, 0.1, 0.60)
	_, q = o.Params()
	if q != 500 {
		t.Error("optimizer moved during hold")
	}
}

func TestOptimizerGuardAcceptsImprovement(t *testing.T) {
	o := NewOptimizer(AdaptFairness, 8, 500, true)
	mix := obsWithMix(20, 20)
	o.Step(mix, 0.5, 0.1, 0.30)
	// Metric improved: keep going down to the floor.
	o.Step(mix, 0.5, 0.1, 0.20)
	_, q := o.Params()
	if q != 100 {
		t.Errorf("quanta = %v, want 100 after accepted improvement", q)
	}
}
