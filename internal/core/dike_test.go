package core

import (
	"context"
	"testing"

	"dike/internal/platform"
	"dike/internal/platform/platformtest"
	"dike/internal/sim"
	"dike/internal/workload"
)

// runDike builds WLn at the given scale, runs Dike with cfg, and returns
// the policy and machine after completion.
func runDike(t *testing.T, wlN int, scale float64, cfg Config) (*Dike, *platformtest.Machine) {
	t.Helper()
	m := platformtest.NewMachine(platformtest.DefaultConfig())
	if _, err := workload.MustTable2(wlN).Build(m, workload.BuildOptions{Seed: 42, Scale: scale}); err != nil {
		t.Fatal(err)
	}
	cfg.PlacementSeed = 42
	d, err := New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.NewEngine(m, d, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return d, m
}

func TestNewDefaults(t *testing.T) {
	m := platformtest.NewMachine(platformtest.DefaultConfig())
	d, err := New(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if d.QuantaLength() != 500 || d.SwapSize() != 8 {
		t.Errorf("defaults = ⟨%d,%d⟩", d.SwapSize(), d.QuantaLength())
	}
	if d.Name() != "dike" {
		t.Errorf("name = %q", d.Name())
	}
	if _, err := New(m, Config{SwapSize: 5}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestDikeNames(t *testing.T) {
	m := platformtest.NewMachine(platformtest.DefaultConfig())
	for goal, want := range map[AdaptationGoal]string{
		AdaptNone:        "dike",
		AdaptFairness:    "dike-af",
		AdaptPerformance: "dike-ap",
	} {
		d := MustNew(m, Config{Goal: goal})
		if d.Name() != want {
			t.Errorf("goal %v name = %q, want %q", goal, d.Name(), want)
		}
	}
}

func TestDikeEndToEnd(t *testing.T) {
	d, m := runDike(t, 1, 0.15, DefaultConfig())
	if !m.Done() {
		t.Fatal("workload did not finish")
	}
	if m.SwapCount() == 0 {
		t.Error("Dike never swapped on an unfair workload")
	}
	h := d.History()
	if len(h) == 0 {
		t.Fatal("no history recorded")
	}
	for i, rec := range h {
		if rec.SwapSize != 8 || rec.Quanta != 500 {
			t.Fatalf("non-adaptive run changed parameters at record %d: %+v", i, rec)
		}
		if rec.Accepted > rec.Candidates {
			t.Fatalf("accepted %d > candidates %d", rec.Accepted, rec.Candidates)
		}
	}
}

func TestDikePredictionBookkeeping(t *testing.T) {
	d, _ := runDike(t, 1, 0.15, DefaultConfig())
	ps := d.PredictionStats()
	if len(ps.PerThread) == 0 {
		t.Fatal("no prediction stats")
	}
	lo, avg, hi := ps.MinAvgMax()
	if lo > avg || avg > hi {
		t.Errorf("min/avg/max disordered: %v %v %v", lo, avg, hi)
	}
	if lo < -errClamp || hi > errClamp {
		t.Errorf("errors escaped clamp: %v %v", lo, hi)
	}
	series := d.ErrorSeries()
	if len(series) == 0 {
		t.Fatal("no error series")
	}
	for i := 1; i < len(series); i++ {
		if series[i].Time <= series[i-1].Time {
			t.Fatal("error series not strictly increasing in time")
		}
	}
}

func TestDikeImprovesFairnessOverNoScheduling(t *testing.T) {
	// Compare per-process runtime CVs: Dike vs a frozen placement.
	runtimes := func(policy func(m *platformtest.Machine) sim.Policy) (float64, *platformtest.Machine) {
		m := platformtest.NewMachine(platformtest.DefaultConfig())
		inst, err := workload.MustTable2(1).Build(m, workload.BuildOptions{Seed: 42, Scale: 0.15})
		if err != nil {
			t.Fatal(err)
		}
		eng, err := sim.NewEngine(m, policy(m), sim.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		// Mean CV across main benchmarks.
		sum, n := 0.0, 0
		for bi, b := range inst.Workload.Benchmarks {
			if b.Extra {
				continue
			}
			var times []float64
			for _, id := range inst.ThreadsOf(bi) {
				ft, _ := m.Finished(id)
				times = append(times, float64(ft))
			}
			mean, sd := 0.0, 0.0
			for _, x := range times {
				mean += x
			}
			mean /= float64(len(times))
			for _, x := range times {
				sd += (x - mean) * (x - mean)
			}
			cv := 0.0
			if mean > 0 {
				cv = (sd / float64(len(times)))
				cv = cv / (mean * mean)
			}
			sum += cv
			n++
		}
		return sum / float64(n), m
	}
	dikeCV, _ := runtimes(func(m *platformtest.Machine) sim.Policy {
		return MustNew(m, Config{PlacementSeed: 42})
	})
	frozenCV, _ := runtimes(func(m *platformtest.Machine) sim.Policy {
		return frozenPolicy{m: m}
	})
	if dikeCV >= frozenCV {
		t.Errorf("Dike CV %v not below frozen-placement CV %v", dikeCV, frozenCV)
	}
}

// frozenPolicy mimics the CFS baseline without importing sched's CFS (it
// lives here to avoid test-only coupling).
type frozenPolicy struct {
	m      *platformtest.Machine
	placed bool
}

func (f frozenPolicy) Name() string           { return "frozen" }
func (f frozenPolicy) QuantaLength() sim.Time { return 1000 }
func (f frozenPolicy) Quantum(now sim.Time) error {
	placeOnce(f.m, now)
	return nil
}

var placedMachines = map[*platformtest.Machine]bool{}

func placeOnce(m *platformtest.Machine, _ sim.Time) {
	if placedMachines[m] {
		return
	}
	placedMachines[m] = true
	// Simple deterministic shuffle-free spread matching SpreadPlacement's
	// seed-42 layout closely enough for a fairness comparison: interleave
	// threads across cores by a fixed stride.
	ids := m.Threads()
	n := m.Topology().NumCores()
	rng := sim.NewRNG(42)
	idx := make([]int, len(ids))
	for i := range idx {
		idx[i] = i
	}
	rng.Shuffle(idx)
	for i, t := range idx {
		if err := m.Place(ids[t], platform.CoreID(i%n)); err != nil {
			panic(err)
		}
	}
}

func TestDikeAdaptiveChangesParameters(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Goal = AdaptFairness
	d, _ := runDike(t, 7, 0.15, cfg) // UC workload: strong adaptation signal
	changed := false
	for _, rec := range d.History() {
		if rec.SwapSize != 8 || rec.Quanta != 500 {
			changed = true
			break
		}
	}
	if !changed {
		t.Error("adaptive run never changed parameters")
	}
}

func TestDikeQuiescesOnBalancedWorkload(t *testing.T) {
	// After convergence a balanced workload should need only sporadic
	// swaps: the bulk of quanta perform none.
	d, m := runDike(t, 1, 0.2, DefaultConfig())
	h := d.History()
	idle := 0
	for _, rec := range h {
		if rec.Accepted == 0 {
			idle++
		}
	}
	// Placement converges early; afterwards only slow equalization
	// rotation remains, so a clear majority of pair capacity stays
	// unused and a healthy share of quanta perform no swap at all.
	if frac := float64(idle) / float64(len(h)); frac < 0.25 {
		t.Errorf("only %.0f%% of quanta idle; churn too high (swaps=%d)", frac*100, m.SwapCount())
	}
	if cap := 4 * len(h); m.SwapCount() > cap/2 {
		t.Errorf("swaps = %d, more than half of pair capacity %d", m.SwapCount(), cap)
	}
}

func TestDikeDeterministic(t *testing.T) {
	d1, m1 := runDike(t, 3, 0.1, DefaultConfig())
	d2, m2 := runDike(t, 3, 0.1, DefaultConfig())
	if m1.SwapCount() != m2.SwapCount() {
		t.Errorf("swap counts diverged: %d vs %d", m1.SwapCount(), m2.SwapCount())
	}
	if len(d1.History()) != len(d2.History()) {
		t.Error("history lengths diverged")
	}
}

func TestIPCMetricDegradesPlacement(t *testing.T) {
	// The paper argues memory access rate beats IPC as the contention
	// metric on heterogeneous cores (§III-A). With IPC, a fast core
	// inflates the metric regardless of memory demand, so placement
	// decisions chase the wrong signal.
	cfg := DefaultConfig()
	_, mRate := runDike(t, 13, 0.15, cfg)
	cfg.UseIPCMetric = true
	_, mIPC := runDike(t, 13, 0.15, cfg)

	// IPC ranks compute threads above memory threads (they retire more
	// instructions), so the placement rule hands fast cores to the
	// threads that need bandwidth least; the memory apps' completion —
	// and with it the workload makespan — suffers.
	makespan := func(m *platformtest.Machine) sim.Time {
		var last sim.Time
		for _, id := range m.Threads() {
			if ft, ok := m.Finished(id); ok && ft > last {
				last = ft
			}
		}
		return last
	}
	if mr, mi := makespan(mRate), makespan(mIPC); mr >= mi {
		t.Errorf("access-rate makespan %v not below IPC makespan %v", mr, mi)
	}

	fairness := func(m *platformtest.Machine) float64 {
		// Mean per-benchmark runtime CV over the first four benchmarks
		// (8 threads each, ids 0..31).
		sum := 0.0
		for b := 0; b < 4; b++ {
			var times []float64
			for i := 0; i < 8; i++ {
				ft, ok := m.Finished(platform.ThreadID(b*8 + i))
				if !ok {
					t.Fatal("unfinished thread")
				}
				times = append(times, float64(ft))
			}
			mean, ss := 0.0, 0.0
			for _, x := range times {
				mean += x
			}
			mean /= 8
			for _, x := range times {
				ss += (x - mean) * (x - mean)
			}
			sum += (ss / 8) / (mean * mean)
		}
		return 1 - sum/4 // higher = fairer (Eqn 4 flavour, squared CV)
	}
	// Eqn 4 fairness stays comparable either way (within-process
	// equalization doesn't depend on the metric); just sanity-check both
	// runs stayed fair.
	if fr, fi := fairness(mRate), fairness(mIPC); fr < 0.9 || fi < 0.9 {
		t.Errorf("fairness collapsed: rate %v, ipc %v", fr, fi)
	}
}
