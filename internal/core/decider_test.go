package core

import (
	"testing"

	"dike/internal/platform/platformtest"
	"dike/internal/sim"
)

func preds(ps ...Prediction) []Prediction { return ps }

func TestDeciderProfitGate(t *testing.T) {
	d := NewDecider()
	in := preds(
		Prediction{Pair: Pair{Low: 0, High: 1}, Total: 1.5},
		Prediction{Pair: Pair{Low: 2, High: 3}, Total: -0.5},
		Prediction{Pair: Pair{Low: 4, High: 5}, Total: 0},
	)
	out := d.Filter(in, 1)
	if len(out) != 1 || out[0].Pair.Low != 0 {
		t.Errorf("Filter = %v, want only the profitable pair", out)
	}
}

func TestDeciderEqualizeBypassesProfit(t *testing.T) {
	d := NewDecider()
	in := preds(Prediction{Pair: Pair{Low: 0, High: 1, Equalize: true}, Total: -0.5})
	if out := d.Filter(in, 1); len(out) != 1 {
		t.Error("equalize pair rejected by profit gate")
	}
}

func TestDeciderCooldown(t *testing.T) {
	d := NewDecider()
	p := Prediction{Pair: Pair{Low: 0, High: 1}, Total: 1}
	out := d.Filter(preds(p), 5)
	if len(out) != 1 {
		t.Fatal("initial pair rejected")
	}
	d.Committed(p.Pair, 5)
	// Next quantum: both members rest.
	if out := d.Filter(preds(p), 6); len(out) != 0 {
		t.Error("cooldown not enforced")
	}
	// One member resting blocks the pair too.
	q := Prediction{Pair: Pair{Low: 0, High: 9}, Total: 1}
	if out := d.Filter(preds(q), 6); len(out) != 0 {
		t.Error("cooldown not enforced for partial overlap")
	}
	// Two quanta later (cooldown 1): allowed again.
	if out := d.Filter(preds(p), 7); len(out) != 1 {
		t.Error("pair still blocked after cooldown expired")
	}
}

func TestDeciderTimeScaledCooldown(t *testing.T) {
	d := NewDecider()
	d.SetQuanta(100) // cooldownWindow 400 -> 4 quanta
	p := Prediction{Pair: Pair{Low: 0, High: 1}, Total: 1}
	d.Committed(p.Pair, 10)
	for q := 11; q <= 14; q++ {
		if out := d.Filter(preds(p), q); len(out) != 0 {
			t.Errorf("quantum %d: cooldown not enforced", q)
		}
	}
	if out := d.Filter(preds(p), 15); len(out) != 1 {
		t.Error("pair blocked beyond the scaled cooldown")
	}
	// Long quanta keep the paper's one-quantum rule.
	d2 := NewDecider()
	d2.SetQuanta(1000)
	d2.Committed(p.Pair, 10)
	if out := d2.Filter(preds(p), 12); len(out) != 1 {
		t.Error("1000ms quanta should rest only one quantum")
	}
}

func TestDeciderAblationFlags(t *testing.T) {
	d := NewDecider()
	d.DisableProfitGate = true
	if out := d.Filter(preds(Prediction{Pair: Pair{Low: 0, High: 1}, Total: -5}), 1); len(out) != 1 {
		t.Error("profit gate not disabled")
	}
	d2 := NewDecider()
	d2.DisableCooldown = true
	p := Prediction{Pair: Pair{Low: 0, High: 1}, Total: 1}
	d2.Committed(p.Pair, 1)
	if out := d2.Filter(preds(p), 2); len(out) != 1 {
		t.Error("cooldown not disabled")
	}
}

func TestMigratorAppliesSwaps(t *testing.T) {
	m := platformtest.NewMachine(platformtest.DefaultConfig())
	if err := m.AddThread(0, 0, platformtest.ConstProgram{Work: 1000}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddThread(1, 1, platformtest.ConstProgram{Work: 1000}); err != nil {
		t.Fatal(err)
	}
	fast := m.Topology().FastCores()[0]
	slow := m.Topology().SlowCores()[0]
	m.Place(0, fast)
	m.Place(1, slow)
	mg := NewMigrator(m)
	d := NewDecider()
	n, err := mg.Apply(preds(Prediction{Pair: Pair{Low: 0, High: 1}, Total: 1}), d, 3, sim.Time(0))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("applied %d swaps, want 1", n)
	}
	if mg.FailedSwaps() != 0 {
		t.Errorf("FailedSwaps = %d, want 0", mg.FailedSwaps())
	}
	c0, _ := m.CoreOf(0)
	c1, _ := m.CoreOf(1)
	if c0 != slow || c1 != fast {
		t.Error("migrator did not exchange cores")
	}
	// The decider now knows both threads were swapped at quantum 3.
	if out := d.Filter(preds(Prediction{Pair: Pair{Low: 0, High: 1}, Total: 1}), 4); len(out) != 0 {
		t.Error("Apply did not record the swap with the decider")
	}
}
