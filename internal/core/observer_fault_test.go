package core

import (
	"math"
	"testing"

	"dike/internal/counters"
	"dike/internal/platform"
	"dike/internal/platform/platformtest"
	"dike/internal/sim"
)

// steerableDisruptor perturbs only the target thread's counter deltas,
// with a caller-supplied mutation. All platform faults are off.
type steerableDisruptor struct {
	target platform.ThreadID
	mutate func(counters.ThreadDelta) (counters.ThreadDelta, bool)
}

func (d *steerableDisruptor) CoreFactor(platform.CoreID, sim.Time) float64 { return 1 }
func (d *steerableDisruptor) MigrationFails(platform.ThreadID, platform.CoreID, sim.Time) bool {
	return false
}
func (d *steerableDisruptor) ThreadFault(platform.ThreadID, sim.Time) (bool, bool) {
	return false, false
}
func (d *steerableDisruptor) PerturbDelta(id platform.ThreadID, _ sim.Time, delta counters.ThreadDelta) (counters.ThreadDelta, bool) {
	if id == d.target && d.mutate != nil {
		return d.mutate(delta)
	}
	return delta, true
}

// observeQuantum advances the machine one 500 ms quantum and observes.
func observeQuantum(t *testing.T, m *platformtest.Machine, o *Observer, q int) *Observation {
	t.Helper()
	from, to := sim.Time((q-1)*500), sim.Time(q*500)
	return observeAfter(t, m, o, from, to)
}

func TestObserverRejectsInsaneReadings(t *testing.T) {
	kinds := []struct {
		name string
		mut  func(counters.ThreadDelta) (counters.ThreadDelta, bool)
	}{
		{"nan", func(d counters.ThreadDelta) (counters.ThreadDelta, bool) { d.Misses = math.NaN(); return d, true }},
		{"+inf", func(d counters.ThreadDelta) (counters.ThreadDelta, bool) { d.Misses = math.Inf(1); return d, true }},
		{"-inf", func(d counters.ThreadDelta) (counters.ThreadDelta, bool) { d.Misses = math.Inf(-1); return d, true }},
		{"negative", func(d counters.ThreadDelta) (counters.ThreadDelta, bool) { d.Misses = -d.Misses - 1; return d, true }},
	}
	for _, k := range kinds {
		t.Run(k.name, func(t *testing.T) {
			m := twoClassMachine(t)
			o := NewObserver(m, 0.25, 0.10)
			dis := &steerableDisruptor{target: 0}
			m.SetDisruptor(dis)
			mustObserve(t, o, 0)
			clean := observeQuantum(t, m, o, 1)
			goodRate := clean.Rate[0]
			if goodRate <= 0 {
				t.Fatal("setup: thread 0 should have a positive rate")
			}

			dis.mutate = k.mut
			obs := observeQuantum(t, m, o, 2)
			if !obs.Held[0] {
				t.Error("insane reading not marked held")
			}
			if obs.Sanitized.Rejected != 1 {
				t.Errorf("Rejected = %d, want 1", obs.Sanitized.Rejected)
			}
			// Hold-last-good: the rate stays near the last sane measurement
			// instead of going NaN/Inf/negative.
			r := obs.Rate[0]
			if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
				t.Errorf("held rate is garbage: %v", r)
			}
			if r != goodRate {
				t.Errorf("held rate = %v, want last good %v", r, goodRate)
			}
			// The fairness gate stays finite.
			if math.IsNaN(obs.Fairness) || math.IsInf(obs.Fairness, 0) {
				t.Errorf("fairness gate corrupted: %v", obs.Fairness)
			}
		})
	}
}

func TestObserverDropoutHoldsThenExpires(t *testing.T) {
	m := twoClassMachine(t)
	o := NewObserver(m, 0.25, 0.10)
	dis := &steerableDisruptor{target: 0}
	m.SetDisruptor(dis)
	mustObserve(t, o, 0)
	clean := observeQuantum(t, m, o, 1)
	goodRate := clean.Rate[0]

	dis.mutate = func(d counters.ThreadDelta) (counters.ThreadDelta, bool) { return d, false }
	for q := 2; q <= 1+maxStaleQuanta; q++ {
		obs := observeQuantum(t, m, o, q)
		if !obs.Held[0] {
			t.Fatalf("quantum %d: dropped sample not held", q)
		}
		if obs.Rate[0] != goodRate {
			t.Fatalf("quantum %d: held rate %v, want %v", q, obs.Rate[0], goodRate)
		}
		if obs.Sanitized.Dropped != 1 {
			t.Fatalf("quantum %d: Dropped = %d, want 1", q, obs.Sanitized.Dropped)
		}
	}
	// Beyond the staleness bound the held estimate expires to zero.
	obs := observeQuantum(t, m, o, 2+maxStaleQuanta)
	if !obs.Held[0] {
		t.Error("expired thread not marked held")
	}
	if obs.Rate[0] != 0 {
		t.Errorf("stale-beyond-bound rate = %v, want 0", obs.Rate[0])
	}
	// Recovery: a good sample resets the hold state immediately.
	dis.mutate = nil
	obs = observeQuantum(t, m, o, 3+maxStaleQuanta)
	if obs.Held[0] {
		t.Error("recovered thread still held")
	}
	if obs.Rate[0] <= 0 {
		t.Errorf("recovered rate = %v, want positive", obs.Rate[0])
	}
	if got := o.SanitizedTotal().Dropped; got != maxStaleQuanta+1 {
		t.Errorf("run total Dropped = %d, want %d", got, maxStaleQuanta+1)
	}
}

func TestObserverClampsSaturatedReadings(t *testing.T) {
	m := twoClassMachine(t)
	o := NewObserver(m, 0.25, 0.10)
	dis := &steerableDisruptor{target: 0}
	m.SetDisruptor(dis)
	mustObserve(t, o, 0)
	observeQuantum(t, m, o, 1)

	dis.mutate = func(d counters.ThreadDelta) (counters.ThreadDelta, bool) {
		d.Misses, d.Accesses = 1e12, 1e12
		return d, true
	}
	obs := observeQuantum(t, m, o, 2)
	capacity := m.Config().MemCapacity
	if obs.Rate[0] != capacity {
		t.Errorf("saturated rate = %v, want clamp to capacity %v", obs.Rate[0], capacity)
	}
	if obs.Sanitized.Clamped != 1 {
		t.Errorf("Clamped = %d, want 1", obs.Sanitized.Clamped)
	}
	// A clamped reading is a (bounded) measurement, not a hold.
	if obs.Held[0] {
		t.Error("clamped reading marked held")
	}
}

func TestObserverZeroIntervalQuantum(t *testing.T) {
	m := twoClassMachine(t)
	o := NewObserver(m, 0.25, 0.10)
	mustObserve(t, o, 0)
	// A second observation at the same instant is a zero-length quantum:
	// no rates, no sanitization, no held threads.
	obs := mustObserve(t, o, 0)
	if obs.Sample.Interval != 0 {
		t.Fatalf("interval = %v, want 0", obs.Sample.Interval)
	}
	for _, id := range obs.Alive {
		if obs.Rate[id] != 0 {
			t.Errorf("thread %d rate = %v in a zero-length quantum", id, obs.Rate[id])
		}
	}
	if len(obs.Held) != 0 {
		t.Errorf("zero-length quantum held %d threads", len(obs.Held))
	}
	if obs.Sanitized != (SanitizeStats{}) {
		t.Errorf("zero-length quantum sanitized: %+v", obs.Sanitized)
	}
}

func TestObserverHeldExcludedFromCapability(t *testing.T) {
	m := twoClassMachine(t)
	o := NewObserver(m, 0.25, 0.10)
	dis := &steerableDisruptor{target: 0}
	m.SetDisruptor(dis)
	mustObserve(t, o, 0)
	observeQuantum(t, m, o, 1)
	core0, err := m.CoreOf(0)
	if err != nil {
		t.Fatal(err)
	}
	before := o.Capability(core0)
	// Poison thread 0 with an insane reading carrying a colossal rate; if
	// the capability estimator consumed it the core would look superhuman.
	dis.mutate = func(d counters.ThreadDelta) (counters.ThreadDelta, bool) {
		d.Misses = math.Inf(1)
		return d, true
	}
	observeQuantum(t, m, o, 2)
	after := o.Capability(core0)
	if math.IsNaN(after) || math.IsInf(after, 0) {
		t.Fatalf("capability corrupted: %v", after)
	}
	// The estimate may drift from the other (healthy) threads' absence of
	// thread 0's contribution is the point: no garbage-driven jump.
	if after > before*2 {
		t.Errorf("capability jumped from %v to %v on a held thread", before, after)
	}
}

func TestWatchdogRevertsToLastKnownGood(t *testing.T) {
	m := twoClassMachine(t)
	cfg := DefaultConfig()
	d := MustNew(m, cfg)
	// Drift the parameters away from the validated starting pair, then
	// feed the watchdog a diverging gate: after watchdogK consecutive
	// growth quanta it must restore the last-known-good pair.
	d.swapSize, d.quanta = 16, 100
	gate := 0.2
	for i := 0; i < watchdogK+1; i++ {
		d.watchdog(&Observation{Fairness: gate})
		gate *= 1.10
	}
	if d.WatchdogTrips() != 1 {
		t.Fatalf("WatchdogTrips = %d, want 1", d.WatchdogTrips())
	}
	if d.swapSize != cfg.SwapSize || d.quanta != cfg.QuantaLength {
		t.Errorf("params after revert = <%d,%v>, want <%d,%v>",
			d.swapSize, d.quanta, cfg.SwapSize, cfg.QuantaLength)
	}
}

func TestWatchdogQuietWhenFair(t *testing.T) {
	m := twoClassMachine(t)
	d := MustNew(m, DefaultConfig())
	d.swapSize, d.quanta = 16, 100
	// Below the threshold the watchdog records, never trips — and adopts
	// the current parameters as the new last-known-good.
	for i := 0; i < 3*watchdogK; i++ {
		d.watchdog(&Observation{Fairness: 0.01})
	}
	if d.WatchdogTrips() != 0 {
		t.Errorf("watchdog tripped on a fair system: %d", d.WatchdogTrips())
	}
	if d.lkgSwap != 16 || d.lkgQuanta != 100 {
		t.Errorf("lkg = <%d,%v>, want the healthy <16,100>", d.lkgSwap, d.lkgQuanta)
	}
	// A noisy-but-not-diverging gate (oscillating around a level) must not
	// trip either.
	for i := 0; i < 3*watchdogK; i++ {
		f := 0.2
		if i%2 == 0 {
			f = 0.25
		}
		d.watchdog(&Observation{Fairness: f})
	}
	if d.WatchdogTrips() != 0 {
		t.Errorf("watchdog tripped on an oscillating gate: %d", d.WatchdogTrips())
	}
}

func TestOptimizerForceParams(t *testing.T) {
	o := NewOptimizer(AdaptFairness, 8, 500, true)
	o.ForceParams(12, 200)
	if s, q := o.Params(); s != 12 || q != 200 {
		t.Errorf("ForceParams gave <%d,%v>, want <12,200>", s, q)
	}
	// Out-of-range values snap into the valid space instead of panicking.
	o.ForceParams(99, 333)
	s, q := o.Params()
	if s != MaxSwapSize {
		t.Errorf("swap = %d, want clamp to %d", s, MaxSwapSize)
	}
	if q != 200 && q != 500 {
		t.Errorf("quanta = %v, want nearest valid level to 333", q)
	}
	o.ForceParams(1, 100)
	if s, _ := o.Params(); s != MinSwapSize {
		t.Errorf("swap = %d, want floor %d", s, MinSwapSize)
	}
}
