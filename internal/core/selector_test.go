package core

import (
	"testing"

	"dike/internal/platform"
)

// fakeObs builds an Observation by hand so Selector logic can be tested
// in isolation from the machine.
type obsSpec struct {
	id       platform.ThreadID
	proc     int
	class    ThreadClass
	rate     float64
	baseline float64
	instr    float64
	core     platform.CoreID
	coreHigh bool
	coreCap  float64
}

func makeObs(specs []obsSpec) *Observation {
	obs := &Observation{
		Class:    map[platform.ThreadID]ThreadClass{},
		Rate:     map[platform.ThreadID]float64{},
		Baseline: map[platform.ThreadID]float64{},
		Instr:    map[platform.ThreadID]float64{},
		CoreOf:   map[platform.ThreadID]platform.CoreID{},
		Proc:     map[platform.ThreadID]int{},
		HighBW:   map[platform.CoreID]bool{},
	}
	maxCore := platform.CoreID(0)
	for _, s := range specs {
		if s.core > maxCore {
			maxCore = s.core
		}
	}
	obs.Capability = make([]float64, int(maxCore)+1)
	for i := range obs.Capability {
		obs.Capability[i] = 1
	}
	for _, s := range specs {
		obs.Alive = append(obs.Alive, s.id)
		obs.Class[s.id] = s.class
		obs.Rate[s.id] = s.rate
		obs.Baseline[s.id] = s.baseline
		obs.Instr[s.id] = s.instr
		obs.CoreOf[s.id] = s.core
		obs.Proc[s.id] = s.proc
		if s.coreHigh {
			obs.HighBW[s.core] = true
		}
		if s.coreCap > 0 {
			obs.Capability[s.core] = s.coreCap
		}
	}
	return obs
}

func TestRankingBoundaryCountsHighCores(t *testing.T) {
	obs := makeObs([]obsSpec{
		{id: 0, proc: 0, class: ComputeClass, rate: 0.1, baseline: 0.1, core: 0, coreHigh: true},
		{id: 1, proc: 0, class: ComputeClass, rate: 0.2, baseline: 0.1, core: 1, coreHigh: true},
		{id: 2, proc: 1, class: MemoryClass, rate: 3, baseline: 3, core: 2},
		{id: 3, proc: 1, class: MemoryClass, rate: 4, baseline: 3, core: 3},
	})
	r := NewRanking(obs)
	if r.Boundary != 2 {
		t.Errorf("boundary = %d, want 2 (two high cores)", r.Boundary)
	}
	// Both memory threads deserve high cores but sit on low ones.
	for i := 2; i < 4; i++ {
		if !r.Violator(i) {
			t.Errorf("rank %d should be a violator", i)
		}
	}
	// Both compute threads squat on high cores.
	for i := 0; i < 2; i++ {
		if !r.Violator(i) {
			t.Errorf("rank %d should be a violator", i)
		}
	}
}

func TestSelectPairsRepairsMisplacement(t *testing.T) {
	obs := makeObs([]obsSpec{
		{id: 0, proc: 0, class: ComputeClass, rate: 0.1, baseline: 0.1, core: 0, coreHigh: true},
		{id: 1, proc: 0, class: ComputeClass, rate: 0.12, baseline: 0.1, core: 1, coreHigh: true},
		{id: 2, proc: 1, class: MemoryClass, rate: 3, baseline: 3.2, instr: 10, core: 2},
		{id: 3, proc: 1, class: MemoryClass, rate: 4, baseline: 3.2, instr: 5, core: 3},
	})
	pairs := SelectPairs(obs, 4)
	if len(pairs) != 2 {
		t.Fatalf("pairs = %v, want 2", pairs)
	}
	for _, p := range pairs {
		if obs.Class[p.Low] != ComputeClass || obs.Class[p.High] != MemoryClass {
			t.Errorf("pair %v does not cross the boundary", p)
		}
		if p.Equalize {
			t.Errorf("placement pair marked Equalize")
		}
	}
	// The lagging memory thread (id 3, fewer instructions) ranks higher
	// and must be paired first with the lowest compute squatter.
	if pairs[0].High != 3 {
		t.Errorf("first pair high = %d, want the lagging sibling 3", pairs[0].High)
	}
}

func TestSelectPairsRespectsSwapSize(t *testing.T) {
	var specs []obsSpec
	for i := 0; i < 8; i++ {
		specs = append(specs, obsSpec{
			id: platform.ThreadID(i), proc: 0, class: ComputeClass,
			rate: 0.1 + float64(i)*0.01, baseline: 0.1, core: platform.CoreID(i), coreHigh: true,
		})
	}
	for i := 8; i < 16; i++ {
		specs = append(specs, obsSpec{
			id: platform.ThreadID(i), proc: 1, class: MemoryClass,
			rate: 3 + float64(i)*0.01, baseline: 3, instr: float64(i), core: platform.CoreID(i),
		})
	}
	obs := makeObs(specs)
	pairs := SelectPairs(obs, 4)
	if len(pairs) > 2 {
		t.Errorf("swapSize 4 produced %d pairs", len(pairs))
	}
}

func TestSelectPairsFairGateIsCallerResponsibility(t *testing.T) {
	// SelectPairs with no violators returns no placement pairs.
	obs := makeObs([]obsSpec{
		{id: 0, proc: 0, class: MemoryClass, rate: 3, baseline: 3, core: 0, coreHigh: true},
		{id: 1, proc: 1, class: ComputeClass, rate: 0.1, baseline: 0.1, core: 1},
	})
	pairs := SelectPairs(obs, 4)
	if len(pairs) != 0 {
		t.Errorf("pairs = %v, want none", pairs)
	}
}

func TestSelectPairsDeadband(t *testing.T) {
	// Violators whose demands are within the dead-band are not paired.
	obs := makeObs([]obsSpec{
		{id: 0, proc: 0, class: MemoryClass, rate: 3.0, baseline: 3.0, core: 0, coreHigh: true},
		{id: 1, proc: 1, class: MemoryClass, rate: 3.1, baseline: 3.1, core: 1},
	})
	pairs := SelectPairs(obs, 4)
	for _, p := range pairs {
		if !p.Equalize {
			t.Errorf("near-identical demands paired: %v", p)
		}
	}
}

func TestSelectPairsSameClassBranch(t *testing.T) {
	// All threads the same class: pair from both ends.
	var specs []obsSpec
	for i := 0; i < 6; i++ {
		specs = append(specs, obsSpec{
			id: platform.ThreadID(i), proc: i / 3, class: MemoryClass,
			rate: 1 + float64(i), baseline: 1 + float64(i), core: platform.CoreID(i),
			coreHigh: i >= 3,
		})
	}
	obs := makeObs(specs)
	pairs := SelectPairs(obs, 4)
	if len(pairs) == 0 {
		t.Fatal("same-class branch produced no pairs")
	}
	// First pair must combine the extremes.
	if pairs[0].Low != 0 || pairs[0].High != 5 {
		t.Errorf("first pair = %v, want <0,5>", pairs[0])
	}
}

func TestEqualizePairs(t *testing.T) {
	// One process, no placement violations, but a big progress gap and a
	// capability gap: an equalization pair must be produced.
	obs := makeObs([]obsSpec{
		{id: 0, proc: 0, class: ComputeClass, rate: 0.3, baseline: 0.3, instr: 1000, core: 0, coreHigh: false, coreCap: 1.2},
		{id: 1, proc: 0, class: ComputeClass, rate: 0.3, baseline: 0.3, instr: 800, core: 1, coreHigh: false, coreCap: 0.8},
		{id: 2, proc: 1, class: MemoryClass, rate: 3, baseline: 3, instr: 500, core: 2, coreHigh: true, coreCap: 1.2},
		{id: 3, proc: 1, class: MemoryClass, rate: 3, baseline: 3, instr: 500, core: 3, coreHigh: true, coreCap: 1.2},
	})
	pairs := SelectPairs(obs, 4)
	var eq []Pair
	for _, p := range pairs {
		if p.Equalize {
			eq = append(eq, p)
		}
	}
	if len(eq) != 1 {
		t.Fatalf("equalize pairs = %v, want exactly 1", pairs)
	}
	if eq[0].Low != 0 || eq[0].High != 1 {
		t.Errorf("equalize pair = %v, want ahead=0 behind=1", eq[0])
	}
}

func TestEqualizeRequiresCapabilityGap(t *testing.T) {
	// Progress gap but equal cores: no equalization swap (it would just
	// pay migration cost for nothing).
	obs := makeObs([]obsSpec{
		{id: 0, proc: 0, class: ComputeClass, rate: 0.3, baseline: 0.3, instr: 1000, core: 0, coreCap: 1.0},
		{id: 1, proc: 0, class: ComputeClass, rate: 0.3, baseline: 0.3, instr: 700, core: 1, coreCap: 1.0},
	})
	for _, p := range SelectPairs(obs, 4) {
		if p.Equalize {
			t.Errorf("equalization without capability gap: %v", p)
		}
	}
}

func TestEqualizeRequiresProgressGap(t *testing.T) {
	obs := makeObs([]obsSpec{
		{id: 0, proc: 0, class: ComputeClass, rate: 0.3, baseline: 0.3, instr: 1000, core: 0, coreCap: 1.3},
		{id: 1, proc: 0, class: ComputeClass, rate: 0.3, baseline: 0.3, instr: 995, core: 1, coreCap: 0.8},
	})
	for _, p := range SelectPairs(obs, 4) {
		if p.Equalize {
			t.Errorf("equalization for fair siblings: %v", p)
		}
	}
}

func TestSelectPairsDegenerate(t *testing.T) {
	if got := SelectPairs(makeObs(nil), 8); got != nil {
		t.Errorf("empty obs gave pairs: %v", got)
	}
	one := makeObs([]obsSpec{{id: 0, proc: 0, rate: 1, baseline: 1}})
	if got := SelectPairs(one, 8); got != nil {
		t.Errorf("single thread gave pairs: %v", got)
	}
	two := makeObs([]obsSpec{
		{id: 0, proc: 0, rate: 1, baseline: 1, core: 0},
		{id: 1, proc: 1, rate: 2, baseline: 2, core: 1},
	})
	if got := SelectPairs(two, 0); got != nil {
		t.Errorf("swapSize 0 gave pairs: %v", got)
	}
}

func TestSelectPairsDeterministic(t *testing.T) {
	specs := []obsSpec{
		{id: 0, proc: 0, class: ComputeClass, rate: 0.1, baseline: 0.1, core: 0, coreHigh: true},
		{id: 1, proc: 0, class: ComputeClass, rate: 0.1, baseline: 0.1, core: 1, coreHigh: true},
		{id: 2, proc: 1, class: MemoryClass, rate: 3, baseline: 3, core: 2},
		{id: 3, proc: 1, class: MemoryClass, rate: 3, baseline: 3, core: 3},
	}
	a := SelectPairs(makeObs(specs), 4)
	b := SelectPairs(makeObs(specs), 4)
	if len(a) != len(b) {
		t.Fatal("nondeterministic pair count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic pairs")
		}
	}
}
