package core

import (
	"testing"
	"testing/quick"

	"dike/internal/platform"
)

// randomObs derives a syntactically valid Observation from fuzz input:
// up to 40 threads across up to 6 processes on distinct cores, with
// arbitrary classes, rates and progress.
func randomObs(seeds []uint32) *Observation {
	n := len(seeds)
	if n > 40 {
		n = 40
	}
	var specs []obsSpec
	procBase := map[int]float64{}
	for i := 0; i < n; i++ {
		s := seeds[i]
		proc := int(s % 6)
		base, ok := procBase[proc]
		if !ok {
			base = 0.1 + float64(s%500)/100 // 0.1 .. 5.1
			procBase[proc] = base
		}
		class := ComputeClass
		if base > 1 {
			class = MemoryClass
		}
		specs = append(specs, obsSpec{
			id:       platform.ThreadID(i),
			proc:     proc,
			class:    class,
			rate:     base * (0.8 + float64(s%40)/100),
			baseline: base,
			instr:    float64(s % 10000),
			core:     platform.CoreID(i),
			coreHigh: s%3 == 0,
			coreCap:  0.7 + float64(s%7)/10,
		})
	}
	return makeObs(specs)
}

// TestSelectPairsInvariants checks, for arbitrary observations and swap
// sizes, that SelectPairs never pairs a thread with itself, never uses a
// thread twice, and never exceeds swapSize/2 pairs.
func TestSelectPairsInvariants(t *testing.T) {
	f := func(seeds []uint32, swapRaw uint8) bool {
		if len(seeds) < 2 {
			return true
		}
		obs := randomObs(seeds)
		swapSize := int(swapRaw%16) + 2
		pairs := SelectPairs(obs, swapSize)
		if len(pairs) > swapSize/2 {
			return false
		}
		used := map[platform.ThreadID]bool{}
		for _, p := range pairs {
			if p.Low == p.High {
				return false
			}
			if used[p.Low] || used[p.High] {
				return false
			}
			used[p.Low] = true
			used[p.High] = true
			// Members must be alive threads on distinct cores.
			if obs.CoreOf[p.Low] == obs.CoreOf[p.High] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPlacementPairsCrossBoundary checks that non-equalize pairs always
// combine a low-side squatter with a high-side violator: swapping them
// must strictly reduce the number of placement violations.
func TestPlacementPairsCrossBoundary(t *testing.T) {
	f := func(seeds []uint32, swapRaw uint8) bool {
		if len(seeds) < 2 {
			return true
		}
		obs := randomObs(seeds)
		if sameClass(obs) {
			return true // the same-class branch pairs unconditionally
		}
		pairs := SelectPairs(obs, int(swapRaw%16)+2)
		r := NewRanking(obs)
		rank := map[platform.ThreadID]int{}
		for i, id := range r.Sorted {
			rank[id] = i
		}
		for _, p := range pairs {
			if p.Equalize {
				continue
			}
			// Low side: a low-demand thread on a high-bandwidth core.
			if r.HighDeserving(rank[p.Low]) || !obs.HighBW[obs.CoreOf[p.Low]] {
				return false
			}
			// High side: a high-demand thread on a low-bandwidth core.
			if !r.HighDeserving(rank[p.High]) || obs.HighBW[obs.CoreOf[p.High]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestEqualizePairsInvariants checks that equalization pairs stay within
// one process and always hand the laggard the stronger core.
func TestEqualizePairsInvariants(t *testing.T) {
	f := func(seeds []uint32, swapRaw uint8) bool {
		if len(seeds) < 2 {
			return true
		}
		obs := randomObs(seeds)
		pairs := SelectPairs(obs, int(swapRaw%16)+2)
		for _, p := range pairs {
			if !p.Equalize {
				continue
			}
			if obs.Proc[p.Low] != obs.Proc[p.High] {
				return false
			}
			// Low = ahead sibling, High = behind sibling.
			if obs.Instr[p.Low] < obs.Instr[p.High] {
				return false
			}
			// The ahead sibling's core must be materially stronger.
			if obs.Capability[obs.CoreOf[p.Low]] <= obs.Capability[obs.CoreOf[p.High]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestRankingIsPermutation checks the ranking is a permutation of the
// alive threads with a boundary inside range.
func TestRankingIsPermutation(t *testing.T) {
	f := func(seeds []uint32) bool {
		if len(seeds) == 0 {
			return true
		}
		obs := randomObs(seeds)
		r := NewRanking(obs)
		if len(r.Sorted) != len(obs.Alive) {
			return false
		}
		if r.Boundary < 0 || r.Boundary > len(r.Sorted) {
			return false
		}
		seen := map[platform.ThreadID]bool{}
		for _, id := range r.Sorted {
			if seen[id] {
				return false
			}
			seen[id] = true
		}
		// Sorted by baseline (non-decreasing).
		for i := 1; i < len(r.Sorted); i++ {
			if obs.Baseline[r.Sorted[i]] < obs.Baseline[r.Sorted[i-1]]-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
