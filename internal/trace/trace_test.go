package trace

import (
	"strings"
	"testing"
)

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("err")
	if s.Len() != 0 || s.Last() != 0 {
		t.Error("fresh series state wrong")
	}
	s.Add(1, 0.5)
	s.Add(2, 0.7)
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	tm, v := s.At(1)
	if tm != 2 || v != 0.7 {
		t.Errorf("At(1) = %v, %v", tm, v)
	}
	if s.Last() != 0.7 {
		t.Errorf("Last = %v", s.Last())
	}
}

func TestWriteCSV(t *testing.T) {
	a := NewSeries("a")
	a.Add(1, 10)
	a.Add(2, 20)
	b := NewSeries("b")
	b.Add(1, -1)
	var buf strings.Builder
	if err := WriteCSV(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), got)
	}
	if lines[0] != "series,time_ms,value" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "a,1.000,10") {
		t.Errorf("row = %q", lines[1])
	}
	if !strings.HasPrefix(lines[3], "b,1.000,-1") {
		t.Errorf("row = %q", lines[3])
	}
}

func TestWriteCSVErrors(t *testing.T) {
	if err := WriteCSV(&strings.Builder{}, nil); err == nil {
		t.Error("nil series accepted")
	}
	bad := &Series{Name: "x", Times: []float64{1}, Values: nil}
	if err := WriteCSV(&strings.Builder{}, bad); err == nil {
		t.Error("mismatched series accepted")
	}
}

func TestWriteWideCSV(t *testing.T) {
	a := NewSeries("a")
	a.Add(1, 10)
	a.Add(3, 30)
	b := NewSeries("b")
	b.Add(1, 100)
	b.Add(2, 200)
	var buf strings.Builder
	if err := WriteWideCSV(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "time_ms,a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 4 {
		t.Fatalf("rows = %d", len(lines)-1)
	}
	// t=2 has no sample for a: empty cell.
	if lines[2] != "2.000,,200" {
		t.Errorf("row t=2 = %q", lines[2])
	}
	// t=3 has no sample for b.
	if lines[3] != "3.000,30," {
		t.Errorf("row t=3 = %q", lines[3])
	}
}

func TestWriteWideCSVNil(t *testing.T) {
	if err := WriteWideCSV(&strings.Builder{}, nil); err == nil {
		t.Error("nil series accepted")
	}
}
