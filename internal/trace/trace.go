// Package trace records time series during simulation runs and exports
// them as CSV, for the figure harnesses (e.g. Fig 8's prediction-error
// trend) and the example programs.
package trace

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Series is a named time series with millisecond timestamps.
type Series struct {
	Name   string
	Times  []float64
	Values []float64
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends one sample.
func (s *Series) Add(t, v float64) {
	s.Times = append(s.Times, t)
	s.Values = append(s.Values, v)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Times) }

// At returns the i-th sample.
func (s *Series) At(i int) (t, v float64) { return s.Times[i], s.Values[i] }

// Last returns the most recent value, or 0 if empty.
func (s *Series) Last() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	return s.Values[len(s.Values)-1]
}

// WriteCSV writes the series in long form: series,time_ms,value.
func WriteCSV(w io.Writer, series ...*Series) error {
	if _, err := io.WriteString(w, "series,time_ms,value\n"); err != nil {
		return err
	}
	for _, s := range series {
		if s == nil {
			return errors.New("trace: nil series")
		}
		if len(s.Times) != len(s.Values) {
			return fmt.Errorf("trace: series %q has mismatched lengths", s.Name)
		}
		for i := range s.Times {
			line := s.Name + "," +
				strconv.FormatFloat(s.Times[i], 'f', 3, 64) + "," +
				strconv.FormatFloat(s.Values[i], 'g', 8, 64) + "\n"
			if _, err := io.WriteString(w, line); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteWideCSV writes the series in wide form — one time column and one
// value column per series — aligning samples by exact timestamp. Missing
// cells are left empty.
func WriteWideCSV(w io.Writer, series ...*Series) error {
	times := map[float64]bool{}
	for _, s := range series {
		if s == nil {
			return errors.New("trace: nil series")
		}
		for _, t := range s.Times {
			times[t] = true
		}
	}
	sorted := make([]float64, 0, len(times))
	for t := range times {
		sorted = append(sorted, t)
	}
	sort.Float64s(sorted)

	header := "time_ms"
	for _, s := range series {
		header += "," + s.Name
	}
	if _, err := io.WriteString(w, header+"\n"); err != nil {
		return err
	}
	lookup := make([]map[float64]float64, len(series))
	for i, s := range series {
		m := make(map[float64]float64, len(s.Times))
		for j, t := range s.Times {
			m[t] = s.Values[j]
		}
		lookup[i] = m
	}
	for _, t := range sorted {
		row := strconv.FormatFloat(t, 'f', 3, 64)
		for i := range series {
			if v, ok := lookup[i][t]; ok {
				row += "," + strconv.FormatFloat(v, 'g', 8, 64)
			} else {
				row += ","
			}
		}
		if _, err := io.WriteString(w, row+"\n"); err != nil {
			return err
		}
	}
	return nil
}
