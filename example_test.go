package dike_test

import (
	"fmt"

	"dike"
)

// Example runs a tiny custom workload under Dike and prints whether the
// scheduler acted. Full workloads take simulated minutes; the example
// uses a very small scale so `go test` stays fast.
func Example() {
	w := dike.NewWorkload("example")
	w.Add("jacobi", 4) // memory intensive
	w.Add("lavaMD", 4) // compute intensive
	res, err := dike.Run(w, dike.Options{Scheduler: dike.SchedulerDike, Scale: 0.05})
	if err != nil {
		panic(err)
	}
	fmt.Println("scheduler:", res.Scheduler)
	fmt.Println("acted:", res.Swaps > 0)
	fmt.Println("fair:", res.Fairness > 0.9)
	// Output:
	// scheduler: dike
	// acted: true
	// fair: true
}

// ExampleCompare contrasts Dike with the CFS baseline on the same seed.
func ExampleCompare() {
	w, _ := dike.TableWorkload(1)
	results, err := dike.Compare(w, dike.Options{Scale: 0.2}, dike.SchedulerCFS, dike.SchedulerDike)
	if err != nil {
		panic(err)
	}
	cfs, dk := results[0], results[1]
	fmt.Println("dike fairer:", dk.Fairness > cfs.Fairness)
	fmt.Println("dike faster:", dk.Speedup(cfs) > 1)
	// Output:
	// dike fairer: true
	// dike faster: true
}
