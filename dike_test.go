package dike

import (
	"strings"
	"testing"
	"time"
)

func TestTableWorkload(t *testing.T) {
	w, err := TableWorkload(6)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "wl6" || w.Type() != "B" || w.Threads() != 40 {
		t.Errorf("wl6 = %s/%s/%d", w.Name(), w.Type(), w.Threads())
	}
	if _, err := TableWorkload(0); err == nil {
		t.Error("WL0 accepted")
	}
}

func TestCustomWorkload(t *testing.T) {
	w := NewWorkload("mine")
	if err := w.Add("jacobi", 4); err != nil {
		t.Fatal(err)
	}
	if err := w.Add("srad", 4); err != nil {
		t.Fatal(err)
	}
	if err := w.AddExtra("kmeans", 2); err != nil {
		t.Fatal(err)
	}
	if w.Threads() != 10 {
		t.Errorf("threads = %d", w.Threads())
	}
	if w.Type() != "B" {
		t.Errorf("type = %s", w.Type())
	}
	if err := w.Add("nosuchapp", 4); err == nil {
		t.Error("unknown app accepted")
	}
	if err := w.Add("jacobi", 0); err == nil {
		t.Error("zero threads accepted")
	}
}

func TestAppsCatalogue(t *testing.T) {
	apps := Apps()
	if len(apps) != 10 {
		t.Fatalf("apps = %v", apps)
	}
	found := false
	for _, a := range apps {
		if a == "stream_omp" {
			found = true
		}
	}
	if !found {
		t.Error("stream_omp missing from catalogue")
	}
}

func TestRunAndCompare(t *testing.T) {
	w := NewWorkload("facade-test")
	for _, app := range []string{"jacobi", "lavaMD"} {
		if err := w.Add(app, 4); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Run(w, Options{Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduler != SchedulerDike {
		t.Errorf("default scheduler = %s", res.Scheduler)
	}
	if res.Fairness <= 0 || res.Fairness > 1 {
		t.Errorf("fairness = %v", res.Fairness)
	}
	if res.Makespan <= 0 {
		t.Error("no makespan")
	}
	if len(res.Benches) != 2 {
		t.Errorf("benches = %d", len(res.Benches))
	}
	for _, b := range res.Benches {
		if b.Time < b.MeanThreadTime {
			t.Errorf("%s: time < mean", b.App)
		}
	}

	// Same-seed comparison against the CFS baseline.
	both, err := Compare(w, Options{Scale: 0.1}, SchedulerCFS, SchedulerDike)
	if err != nil {
		t.Fatal(err)
	}
	cfs, dk := both[0], both[1]
	if cfs.Swaps != 0 {
		t.Error("CFS swapped")
	}
	if dk.FairnessImprovement(cfs) <= 0 {
		t.Errorf("Dike fairness %v not above CFS %v", dk.Fairness, cfs.Fairness)
	}
	if dk.Speedup(cfs) <= 0 {
		t.Error("speedup not computable")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, Options{}); err == nil {
		t.Error("nil workload accepted")
	}
	w := NewWorkload("bad")
	_ = w.Add("jacobi", 2)
	if _, err := Run(w, Options{SwapSize: 3}); err == nil {
		t.Error("odd swap size accepted")
	}
	if _, err := Run(w, Options{QuantaLength: 123 * time.Millisecond}); err == nil {
		t.Error("off-grid quantum accepted")
	}
	if _, err := Run(w, Options{Scheduler: "bogus", Scale: 0.05}); err == nil {
		t.Error("unknown scheduler accepted")
	}
}

func TestOptionsPlumbing(t *testing.T) {
	w := NewWorkload("opt")
	_ = w.Add("jacobi", 2)
	_ = w.Add("hotspot", 2)
	res, err := Run(w, Options{
		Scale:             0.05,
		QuantaLength:      200 * time.Millisecond,
		SwapSize:          4,
		FairnessThreshold: 0.2,
		Seed:              7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fairness <= 0 {
		t.Error("run with custom options failed to produce metrics")
	}
}

func TestExperimentRegistry(t *testing.T) {
	ids := Experiments()
	if len(ids) < 9 {
		t.Fatalf("experiments = %v", ids)
	}
	var sb strings.Builder
	if err := RunExperiment("tab2", &sb, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "wl16") {
		t.Error("tab2 report missing workloads")
	}
	if err := RunExperiment("nope", &sb, true); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestAddAt(t *testing.T) {
	w := NewWorkload("staggered")
	if err := w.Add("jacobi", 2); err != nil {
		t.Fatal(err)
	}
	if err := w.AddAt("srad", 2, 2000); err != nil {
		t.Fatal(err)
	}
	if err := w.AddAt("srad", 2, -5); err == nil {
		t.Error("negative start accepted")
	}
	res, err := Run(w, Options{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Benches) != 2 || res.Benches[1].Time <= 0 {
		t.Errorf("staggered run results wrong: %+v", res.Benches)
	}
}
