// Command dikestore inspects and maintains a durable run store offline
// — the segment-log directory a dikeserved -store-dir daemon writes.
//
// Usage:
//
//	dikestore -dir DIR stats             # counter snapshot (JSON)
//	dikestore -dir DIR ls                # list live records
//	dikestore -dir DIR get DIGEST        # print one stored result
//	dikestore -dir DIR verify            # read-only damage scan
//	dikestore -dir DIR compact           # rewrite live records, drop the rest
//
// verify never writes a byte, so it is safe against a store owned by a
// running daemon; stats, ls, get and compact open the store the way the
// daemon does (recovering a torn tail) and must not race a live writer.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"dike/internal/store"
)

func main() {
	dir := flag.String("dir", "", "store directory (required)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: dikestore -dir DIR {stats|ls|get DIGEST|verify|compact}\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *dir == "" || flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}

	var err error
	switch cmd := flag.Arg(0); cmd {
	case "stats":
		err = withStore(*dir, func(s *store.Store) error {
			return printJSON(s.Stats())
		})
	case "ls":
		err = withStore(*dir, func(s *store.Store) error {
			tw := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
			fmt.Fprintln(tw, "KIND\tSEGMENT\tBYTES\tKEY")
			for _, rec := range s.Records() {
				fmt.Fprintf(tw, "%s\t%08d\t%d\t%s\n", rec.Kind, rec.Segment, rec.Bytes, rec.Key)
			}
			return tw.Flush()
		})
	case "get":
		if flag.NArg() != 2 {
			err = fmt.Errorf("get needs exactly one DIGEST argument")
			break
		}
		err = withStore(*dir, func(s *store.Store) error {
			meta, result, ok := s.GetRecord(flag.Arg(1))
			if !ok {
				return fmt.Errorf("no result for digest %s", flag.Arg(1))
			}
			out := struct {
				Digest string          `json:"digest"`
				Meta   json.RawMessage `json:"meta,omitempty"`
				Result json.RawMessage `json:"result"`
			}{Digest: flag.Arg(1), Meta: meta, Result: result}
			return printJSON(out)
		})
	case "verify":
		var rep store.VerifyReport
		rep, err = store.Verify(*dir)
		if err == nil {
			err = printJSON(rep)
			if err == nil && !rep.Clean() {
				// Damage is a distinct exit code so scripts can react
				// without parsing the report.
				os.Exit(1)
			}
		}
	case "compact":
		err = withStore(*dir, func(s *store.Store) error {
			before := s.Stats()
			if err := s.Compact(); err != nil {
				return err
			}
			after := s.Stats()
			fmt.Printf("compacted: %d → %d bytes in %d → %d segments (%d live records)\n",
				before.SizeBytes, after.SizeBytes, before.Segments, after.Segments,
				after.Results+after.Checkpoints)
			return nil
		})
	default:
		err = fmt.Errorf("unknown command %q", cmd)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dikestore:", err)
		os.Exit(2)
	}
}

// withStore opens the store, runs fn, and always closes it.
func withStore(dir string, fn func(*store.Store) error) error {
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		return err
	}
	defer s.Close()
	return fn(s)
}

func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
