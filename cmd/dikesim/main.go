// Command dikesim runs a single workload under one scheduling policy and
// prints the run's metrics: per-benchmark thread-runtime dispersion,
// fairness (Eqn 4), completion times, swap counts and — for the Dike
// policies — prediction accuracy.
//
// Usage:
//
//	dikesim -wl 6 -policy dike                  # WL6 under Dike
//	dikesim -wl 15 -policy dio -scale 1         # full-length WL15 under DIO
//	dikesim -wl 7 -policy dike-af -seed 7       # adaptive, different seed
//	dikesim -apps jacobi,srad -policy dike      # custom two-app workload
//	dikesim -wl 6 -machine big.json             # topology-driven machine spec
//	dikesim -traffic colo.json -policy dike-af  # open-loop traffic scenario
//	dikesim -traffic colo.json -load 0.8        # same, at 80% offered load
//
// With -traffic the run is open-loop: requests arrive, execute and
// depart per the scenario's arrival processes, and the output is
// per-tenant sojourn-time percentiles, SLO violations and fairness
// instead of benchmark completion times. -wl/-apps/-scale are ignored.
//
// Record/replay:
//
//	dikesim -wl 6 -policy dike -record run.log  # record the platform stream
//	dikesim -replay run.log                     # re-run decisions from the log
//	dikesim -replay run.log -digest             # print the decision digest
//
// A replay rebuilds the recorded policy over the log — no machine model
// runs — and verifies every decision against the recording, failing on
// the first divergence. With -digest the only output is the run's
// deterministic decision digest (per-quantum fairness numbers in exact
// round-trip form), so `dikesim -record` and `dikesim -replay` outputs
// can be compared byte-for-byte.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"dike/internal/cli"
	"dike/internal/fault"
	"dike/internal/harness"
	"dike/internal/machine"
	"dike/internal/platform"
	"dike/internal/power"
	"dike/internal/tournament"
	"dike/internal/traffic"
	"dike/internal/workload"
)

func main() {
	var (
		wlFlag     = flag.Int("wl", 1, "Table II workload number (1-16); ignored when -apps is set")
		appsFlag   = flag.String("apps", "", "comma-separated application list for a custom workload")
		policyFlag = flag.String("policy", "dike", "cfs | dio | dike | dike-af | dike-ap | dike-ea | rotate | oracle")
		seedFlag   = flag.Uint64("seed", 42, "simulation seed")
		scaleFlag  = flag.Float64("scale", 0.5, "workload scale")
		kmeansFlag = flag.Bool("kmeans", true, "include the kmeans contention app in custom workloads")
		traceFlag  = flag.String("trace", "", "write a CSV time-series trace (memory utilisation, alive threads, swaps, progress dispersion) to this file")
		faultsFlag = flag.String("faults", "", "fault classes to inject: 'all', 'none', or a comma list of "+fault.ClassNames())
		frateFlag  = flag.Float64("fault-rate", 1, "multiplier on all fault-class base probabilities")
		fseedFlag  = flag.Uint64("fault-seed", 1, "fault injector seed (same seed = identical fault schedule)")
		machFlag   = flag.String("machine", "", "JSON machine spec file (core types, sockets, memory controllers, distance matrix); default is the Table I machine")
		trafFlag   = flag.String("traffic", "", "JSON open-loop traffic spec file; replaces -wl/-apps with arrival-driven requests")
		loadFlag   = flag.Float64("load", 0, "override the traffic spec's offered-load multiplier (requires -traffic)")
		recordFlag = flag.String("record", "", "write a replay log of the run to this file")
		replayFlag = flag.String("replay", "", "re-run a recorded log instead of simulating; other run flags are ignored")
		digestFlag = flag.Bool("digest", false, "print only the deterministic decision digest")
		metaFlag   = flag.String("meta", "", "JSON tournament config file overriding the meta policy's defaults (requires -policy meta)")
		govFlag    = flag.String("governor", "", "power governor to interpose: "+strings.Join(power.Names(), " | "))
		capFlag    = flag.Float64("power-cap", 0, "per-socket watt budget for the ondemand/fairness governors")
		listFlag   = flag.Bool("list-policies", false, "list registered scheduling policies and power governors, then exit")
	)
	flag.Parse()

	if *listFlag {
		for _, p := range harness.Policies() {
			tag := ""
			if p.MetaCandidate {
				tag = " [meta-eligible]"
			}
			fmt.Printf("%-8s %s%s\n", p.Name, p.Description, tag)
		}
		fmt.Println("\npower governors (-governor):")
		for _, g := range power.Governors() {
			fmt.Printf("%-8s %s\n", g.Name, g.Description)
		}
		return
	}

	if *replayFlag != "" {
		replayRun(*replayFlag, *digestFlag)
		return
	}

	var spec harness.RunSpec
	if *trafFlag != "" {
		ts, err := traffic.LoadSpec(*trafFlag)
		if err != nil {
			cli.Fatal(err)
		}
		if *loadFlag != 0 {
			ts.Load = *loadFlag
		}
		spec = harness.RunSpec{Traffic: ts, Policy: *policyFlag, Seed: *seedFlag}
	} else {
		if *loadFlag != 0 {
			cli.Fatal(fmt.Errorf("-load requires -traffic"))
		}
		var w *workload.Workload
		var err error
		if *appsFlag != "" {
			w, err = customWorkload(*appsFlag, *kmeansFlag)
		} else {
			w, err = workload.Table2(*wlFlag)
		}
		if err != nil {
			cli.Fatal(err)
		}
		spec = harness.RunSpec{
			Workload: w, Policy: *policyFlag, Seed: *seedFlag, Scale: *scaleFlag,
		}
	}
	if *metaFlag != "" {
		if *policyFlag != harness.PolicyMeta {
			cli.Fatal(fmt.Errorf("-meta requires -policy %s", harness.PolicyMeta))
		}
		mc, err := loadMetaConfig(*metaFlag)
		if err != nil {
			cli.Fatal(err)
		}
		spec.Meta = mc
	}
	if *govFlag != "" {
		spec.Power = &power.Config{Governor: *govFlag, CapWatts: *capFlag}
	} else if *capFlag != 0 {
		cli.Fatal(fmt.Errorf("-power-cap requires -governor"))
	}
	if *machFlag != "" {
		ms, err := platform.LoadMachineSpec(*machFlag)
		if err != nil {
			cli.Fatal(err)
		}
		mcfg := machine.DefaultConfig()
		mcfg.Spec = ms
		spec.MachineConfig = &mcfg
	}
	if *traceFlag != "" {
		spec.TraceEvery = 250
	}
	if *faultsFlag != "" {
		classes, err := fault.ParseClasses(*faultsFlag)
		if err != nil {
			cli.Fatal(err)
		}
		if classes != 0 {
			fc := fault.DefaultConfig()
			fc.Classes = classes
			fc.Rate = *frateFlag
			fc.Seed = *fseedFlag
			spec.Faults = &fc
		}
	}
	var recFile *os.File
	if *recordFlag != "" {
		f, err := os.Create(*recordFlag)
		if err != nil {
			cli.Fatal(err)
		}
		recFile = f
		spec.Record = f
	}
	out, err := harness.Run(context.Background(), spec)
	if err != nil {
		cli.Fatal(err)
	}
	if recFile != nil {
		if err := recFile.Close(); err != nil {
			cli.Fatal(err)
		}
	}
	if *digestFlag {
		fmt.Print(harness.RunDigest(spec.Policy, out.History, out.MetaStats, out.Power))
		return
	}

	writeTrace := func() {
		if *traceFlag == "" || out.Trace == nil {
			return
		}
		f, err := os.Create(*traceFlag)
		if err != nil {
			cli.Fatal(err)
		}
		if err := out.Trace.WriteCSV(f); err != nil {
			f.Close()
			cli.Fatal(err)
		}
		f.Close()
		fmt.Printf("trace      %s\n", *traceFlag)
	}

	if out.Traffic != nil {
		printTraffic(spec.Policy, out)
		printMeta(out.MetaStats)
		writeTrace()
		return
	}

	r := out.Result
	fmt.Printf("workload   %s (%s)\npolicy     %s\n", r.Workload, r.Type, r.Policy)
	fmt.Printf("fairness   %.4f (Eqn 4)\n", r.Fairness)
	fmt.Printf("makespan   %.1fs   mean main-bench time %.1fs\n", r.Makespan/1000, r.AvgTime/1000)
	fmt.Printf("swaps      %d (%d migrations)\n", r.Swaps, r.Migrations)
	printEnergy(out)
	if out.History != nil {
		fmt.Printf("prediction error: min %+.1f%% avg %+.1f%% max %+.1f%%\n",
			out.PredMin*100, out.PredAvg*100, out.PredMax*100)
	}
	if out.FaultStats != nil {
		fmt.Printf("faults     %d injected: %s\n", out.FaultStats.Total(), out.FaultStats)
		if out.History != nil {
			fmt.Printf("hardening  samples dropped %d rejected %d clamped %d; failed swaps %d; watchdog trips %d\n",
				out.Sanitized.Dropped, out.Sanitized.Rejected, out.Sanitized.Clamped,
				out.FailedSwaps, out.WatchdogTrips)
		}
	}
	printMeta(out.MetaStats)
	writeTrace()
	fmt.Println()
	fmt.Printf("%-15s %-6s %10s %10s %8s\n", "benchmark", "class", "time", "mean", "cv")
	for _, b := range r.Benches {
		tag := ""
		if b.Extra {
			tag = " (extra)"
		}
		fmt.Printf("%-15s %-6s %9.1fs %9.1fs %8.4f%s\n",
			b.Name, classOf(b.Name), b.Time/1000, b.MeanThreadTime/1000, b.CV, tag)
	}
}

// printTraffic reports an open-loop run: totals, fairness and the
// per-tenant sojourn/SLO table.
func printTraffic(policy string, out *harness.RunOutput) {
	tr := out.Traffic
	fmt.Printf("scenario   %s (open-loop, load %.2f)\npolicy     %s\n", tr.Name, tr.Load, policy)
	fmt.Printf("arrivals   %d admitted %d rejected %d completed %d killed %d\n",
		tr.Arrivals, tr.Admitted, tr.Rejected, tr.Completed, tr.Killed)
	fmt.Printf("fairness   jain %.4f  min/max %.4f (weight-normalized inverse slowdown)\n",
		tr.FairnessJain, tr.FairnessMinMax)
	fmt.Printf("drained    %.1fs\n", float64(tr.DrainedAtMs)/1000)
	printEnergy(out)
	if out.History != nil {
		fmt.Printf("prediction error: min %+.1f%% avg %+.1f%% max %+.1f%%\n",
			out.PredMin*100, out.PredAvg*100, out.PredMax*100)
	}
	fmt.Println()
	fmt.Printf("%-12s %8s %8s %8s %8s %8s %8s %9s %9s\n",
		"class", "complete", "p50", "p95", "p99", "max", "slowdown", "slo", "viol%")
	for _, c := range tr.Classes {
		slo := "-"
		viol := "-"
		if c.SLOMs > 0 {
			slo = fmt.Sprintf("%.0fms", c.SLOMs)
			viol = fmt.Sprintf("%.1f", 100*c.ViolationRate)
		}
		fmt.Printf("%-12s %8d %7.0fms %7.0fms %7.0fms %7.0fms %8.2f %9s %9s\n",
			c.Name, c.Completed, c.P50Ms, c.P95Ms, c.P99Ms, c.MaxMs, c.Slowdown, slo, viol)
	}
}

// printEnergy reports the run's power-model outcome and, for governed
// runs, the governor's decision totals.
func printEnergy(out *harness.RunOutput) {
	fmt.Printf("energy     %.0f J (EDP %.1f J·s)\n", out.EnergyJ, out.EDP)
	if out.Power != nil {
		fmt.Printf("governor   %s: %d invocation(s), %d DVFS actuation(s)\n",
			out.Power.Governor, len(out.Power.Invocations), out.Power.Actions())
	}
}

// printMeta reports the meta policy's tournament record: switch count,
// shadow work, and the live-policy timeline (one entry per change).
func printMeta(ms *tournament.Stats) {
	if ms == nil {
		return
	}
	fmt.Printf("meta       %d epoch(s), %d switch(es), %d shadow quanta, objective %s\n",
		len(ms.Epochs), ms.Switches, ms.ShadowQuanta, ms.Objective)
	var tl strings.Builder
	cur := ""
	for _, ep := range ms.Epochs {
		if ep.Live != cur {
			fmt.Fprintf(&tl, " %dms:%s", ep.TimeMs, ep.Live)
			cur = ep.Live
		}
	}
	fmt.Printf("live       %s ->%s (final %s)\n", ms.Candidates[0], tl.String(), ms.FinalPolicy)
}

// loadMetaConfig reads a tournament config JSON file, rejecting unknown
// fields so a typo'd key fails loudly instead of silently running the
// defaults.
func loadMetaConfig(path string) (*tournament.Config, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(blob))
	dec.DisallowUnknownFields()
	var cfg tournament.Config
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("meta config %s: %w", path, err)
	}
	return &cfg, nil
}

// replayRun re-executes a recorded log and reports the verified run.
func replayRun(path string, digest bool) {
	f, err := os.Open(path)
	if err != nil {
		cli.Fatal(err)
	}
	defer f.Close()
	out, err := harness.Replay(f)
	if err != nil {
		cli.Fatal(err)
	}
	if digest {
		fmt.Print(harness.RunDigest(out.Policy, out.History, out.MetaStats, out.Power))
		return
	}
	fmt.Printf("replayed   %s (seed %d)\n", out.Policy, out.Seed)
	fmt.Printf("quanta     %d, last event at %.1fs\n", out.Quanta, float64(out.CompletedAt)/1000)
	fmt.Println("verified   every decision matched the recording")
	if out.Power != nil {
		fmt.Printf("governor   %s: %d invocation(s), %d DVFS actuation(s) replayed\n",
			out.Power.Governor, len(out.Power.Invocations), out.Power.Actions())
	}
	if out.History != nil {
		fmt.Printf("prediction error: min %+.1f%% avg %+.1f%% max %+.1f%%\n",
			out.PredMin*100, out.PredAvg*100, out.PredMax*100)
		last := out.History[len(out.History)-1]
		fmt.Printf("final gate %.4f (swap=%d quanta=%dms)\n", last.Fairness, last.SwapSize, int64(last.Quanta))
	}
}

// classOf returns the ground-truth class letter for a builtin app.
func classOf(app string) string {
	p, err := workload.LookupProfile(app)
	if err != nil {
		return "?"
	}
	return p.Class.String()
}

// customWorkload builds a workload from a comma-separated app list.
func customWorkload(list string, kmeans bool) (*workload.Workload, error) {
	w := &workload.Workload{Name: "custom"}
	for _, app := range strings.Split(list, ",") {
		p, err := workload.LookupProfile(strings.TrimSpace(app))
		if err != nil {
			return nil, err
		}
		w.Benchmarks = append(w.Benchmarks, workload.Benchmark{Profile: p, Threads: workload.ThreadsPerBenchmark})
	}
	if kmeans {
		p, err := workload.LookupProfile("kmeans")
		if err != nil {
			return nil, err
		}
		w.Benchmarks = append(w.Benchmarks, workload.Benchmark{Profile: p, Threads: workload.ThreadsPerBenchmark, Extra: true})
	}
	return w, w.Validate()
}
