// Command dikeserved runs the simulation service: an HTTP/JSON API over
// the harness with a bounded job queue, a worker pool, a digest-keyed
// result cache and per-quantum progress streaming.
//
// Usage:
//
//	dikeserved                            # serve on :8080
//	dikeserved -addr :9000 -workers 8     # bigger pool, other port
//	dikeserved -queue 128 -cache 512      # deeper queue, bigger cache
//	dikeserved -store-dir /var/lib/dike   # durable run store (restart-warm)
//	dikeserved -coord http://coord:9090 -advertise http://me:8080 -lease 10s
//	                                      # self-register and heartbeat a membership lease
//
// Endpoints:
//
//	POST   /v1/runs             submit a simulation job
//	GET    /v1/runs/{id}        poll job status + result
//	DELETE /v1/runs/{id}        cancel a queued or running job
//	GET    /v1/runs/{id}/events NDJSON per-quantum progress stream
//	POST   /v1/sweeps           submit a 32-point configuration sweep
//	GET    /v1/runs?digest=…    content-addressed result lookup (no compute)
//	GET    /v1/store/stats      durable run store counters
//	GET    /healthz             liveness (503 while draining)
//	GET    /metrics             Prometheus text exposition
//
// With -store-dir set, every finished result is appended to a durable,
// content-addressed segment log under that directory. A restarted
// daemon recovers the log (truncating a torn tail if the previous
// process died mid-append), serves known digests from disk without
// re-simulating, and resumes interrupted sweeps from their last
// checkpointed grid point.
//
// On SIGINT/SIGTERM the daemon drains: new submissions get 503, queued
// and in-flight jobs run to completion (bounded by -drain-timeout, after
// which they are hard-cancelled), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dike/internal/serve"
	"dike/internal/store"
)

func main() {
	var (
		addrFlag     = flag.String("addr", ":8080", "listen address")
		workersFlag  = flag.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
		queueFlag    = flag.Int("queue", 64, "bounded job-queue depth (full queue rejects with 429)")
		cacheFlag    = flag.Int("cache", 256, "result cache capacity in results (-1 disables)")
		deadlineFlag = flag.Duration("deadline", 2*time.Minute, "default per-job execution deadline")
		sweepFlag    = flag.Int("sweep-workers", 1, "intra-sweep simulation concurrency")
		drainFlag    = flag.Duration("drain-timeout", 60*time.Second, "grace period for in-flight jobs on shutdown")
		storeDirFlag = flag.String("store-dir", "", "durable run store directory (empty disables persistence)")
		storeSegFlag = flag.Int("store-segment-mb", 8, "store segment rotation size, MiB")
		storeSync    = flag.Bool("store-sync", false, "fsync every store append (power-loss safety at a latency cost)")
		coordFlag    = flag.String("coord", "", "dikecoord base URL to self-register with (empty disables)")
		advertFlag   = flag.String("advertise", "", "URL the coordinator dials this worker on (required with -coord)")
		leaseFlag    = flag.Duration("lease", 10*time.Second, "membership lease TTL when self-registering (0 = permanent, no heartbeat)")
	)
	flag.Parse()

	cfg := serve.Config{
		Workers:         *workersFlag,
		QueueDepth:      *queueFlag,
		CacheSize:       *cacheFlag,
		DefaultDeadline: *deadlineFlag,
		SweepWorkers:    *sweepFlag,
	}
	if *storeDirFlag != "" {
		st, err := store.Open(*storeDirFlag, store.Options{
			SegmentBytes: int64(*storeSegFlag) << 20,
			Sync:         *storeSync,
		})
		if err != nil {
			log.Fatalf("open store %s: %v", *storeDirFlag, err)
		}
		defer st.Close()
		stats := st.Stats()
		log.Printf("store %s: %d results, %d checkpoints in %d segments (%d bytes)",
			*storeDirFlag, stats.Results, stats.Checkpoints, stats.Segments, stats.SizeBytes)
		if stats.TruncatedRecords > 0 || stats.CorruptRecords > 0 {
			log.Printf("store recovery: truncated %d torn record(s) (%d bytes), skipped %d corrupt record(s) (%d bytes)",
				stats.TruncatedRecords, stats.TruncatedBytes, stats.CorruptRecords, stats.CorruptBytes)
		}
		cfg.Store = st
	}
	srv := serve.New(cfg)
	srv.Start()

	httpSrv := &http.Server{
		Addr:              *addrFlag,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("dikeserved listening on %s", *addrFlag)
		errCh <- httpSrv.ListenAndServe()
	}()

	// Self-registration: join the coordinator's fleet and keep the
	// membership lease renewed until shutdown.
	var reg *registrar
	if *coordFlag != "" {
		var err error
		if reg, err = newRegistrar(*coordFlag, *advertFlag, *leaseFlag); err != nil {
			log.Fatal(err)
		}
		reg.start()
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errCh:
		// The listener died before any shutdown was requested.
		log.Fatal(err)
	case sig := <-sigCh:
		log.Printf("received %v, draining (timeout %v)", sig, *drainFlag)
	}

	// Leave the fleet first so the coordinator stops routing new
	// placements here, then drain the job layer — submissions now get
	// 503 while status, events and metrics stay readable — then close
	// the HTTP listener.
	ctx, cancel := context.WithTimeout(context.Background(), *drainFlag)
	defer cancel()
	if reg != nil {
		reg.shutdown(ctx)
	}
	if err := srv.Drain(ctx); err != nil {
		log.Printf("drain incomplete, in-flight jobs were cancelled: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	log.Print("dikeserved stopped")
}
