package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/url"
	"strings"
	"time"

	"dike/internal/serve/api"
)

// registrar keeps a worker registered with a dikecoord coordinator:
// one join POST at startup, then heartbeat renewals at a third of the
// lease TTL so a live worker never expires, and a best-effort DELETE
// on shutdown so a drained worker leaves the ring immediately instead
// of waiting out its lease. A worker that dies abruptly is covered by
// the other half of the protocol — the coordinator expires the lease.
type registrar struct {
	coord     string        // coordinator base URL
	advertise string        // URL the coordinator should dial us on
	ttl       time.Duration // lease TTL; 0 registers permanently (no heartbeat)
	client    *http.Client
	stop      chan struct{}
	done      chan struct{}
}

func newRegistrar(coord, advertise string, ttl time.Duration) (*registrar, error) {
	coord = strings.TrimRight(strings.TrimSpace(coord), "/")
	advertise = strings.TrimRight(strings.TrimSpace(advertise), "/")
	if advertise == "" {
		return nil, fmt.Errorf("dikeserved: -coord requires -advertise (the URL the coordinator dials this worker on)")
	}
	if ttl < 0 {
		return nil, fmt.Errorf("dikeserved: -lease must be >= 0, got %v", ttl)
	}
	return &registrar{
		coord:     coord,
		advertise: advertise,
		ttl:       ttl,
		client:    &http.Client{Timeout: 5 * time.Second},
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}, nil
}

// start joins immediately (retrying until the coordinator answers) and
// then heartbeats in the background. It returns once the first join
// attempt has been made, not once it has succeeded — a worker must
// come up even when its coordinator is still booting.
func (r *registrar) start() {
	if err := r.join(); err != nil {
		log.Printf("register with %s failed (will retry): %v", r.coord, err)
	}
	go r.loop()
}

func (r *registrar) loop() {
	defer close(r.done)
	// Renew at a third of the TTL so two heartbeats can be lost before
	// the lease expires. Permanent registrations still retry slowly
	// until one join lands, then stop.
	interval := r.ttl / 3
	if r.ttl == 0 {
		interval = 5 * time.Second
	}
	if interval < 250*time.Millisecond {
		interval = 250 * time.Millisecond
	}
	joined := false
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
			if r.ttl == 0 && joined {
				continue // permanent membership needs no renewal
			}
			if err := r.join(); err != nil {
				log.Printf("lease renewal with %s failed: %v", r.coord, err)
			} else {
				joined = true
			}
		}
	}
}

func (r *registrar) join() error {
	body, err := json.Marshal(api.WorkerJoinRequest{URL: r.advertise, TTLMs: r.ttl.Milliseconds()})
	if err != nil {
		return err
	}
	resp, err := r.client.Post(r.coord+"/v1/cluster/workers", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("coordinator answered %s", resp.Status)
	}
	return nil
}

// shutdown stops the heartbeat and deregisters, so the coordinator
// drops this worker from the ring now rather than at lease expiry.
func (r *registrar) shutdown(ctx context.Context) {
	close(r.stop)
	<-r.done
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		r.coord+"/v1/cluster/workers?url="+url.QueryEscape(r.advertise), nil)
	if err != nil {
		return
	}
	resp, err := r.client.Do(req)
	if err != nil {
		log.Printf("deregister from %s failed (lease will expire): %v", r.coord, err)
		return
	}
	resp.Body.Close()
	log.Printf("deregistered %s from %s", r.advertise, r.coord)
}
