// Command diketrace records a scheduling run as a JSON run-record and
// analyses recorded runs offline: adaptation trajectory, gate timeline,
// swap activity and prediction-error digest.
//
// Usage:
//
//	diketrace record -wl 7 -policy dike-af -o run.json
//	diketrace summarize run.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"dike/internal/cli"
	"dike/internal/harness"
	"dike/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "summarize":
		summarize(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: diketrace record -wl N -policy P [-seed S] [-scale X] -o FILE")
	fmt.Fprintln(os.Stderr, "       diketrace summarize FILE")
	os.Exit(2)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	wlFlag := fs.Int("wl", 1, "Table II workload number (1-16)")
	policyFlag := fs.String("policy", "dike", "scheduling policy")
	seedFlag := fs.Uint64("seed", 42, "simulation seed")
	scaleFlag := fs.Float64("scale", 0.5, "workload scale")
	outFlag := fs.String("o", "run.json", "output file")
	fs.Parse(args)

	w, err := workload.Table2(*wlFlag)
	if err != nil {
		cli.Fatal(err)
	}
	out, err := harness.Run(context.Background(), harness.RunSpec{
		Workload: w, Policy: *policyFlag, Seed: *seedFlag, Scale: *scaleFlag,
		TraceEvery: 500,
	})
	if err != nil {
		cli.Fatal(err)
	}
	f, err := os.Create(*outFlag)
	if err != nil {
		cli.Fatal(err)
	}
	defer f.Close()
	if err := harness.NewRunRecord(out).WriteJSON(f); err != nil {
		cli.Fatal(err)
	}
	fmt.Printf("recorded %s/%s -> %s (fairness %.4f, makespan %.1fs, %d swaps)\n",
		out.Result.Workload, out.Result.Policy, *outFlag,
		out.Result.Fairness, out.Result.Makespan/1000, out.Result.Swaps)
}

func summarize(args []string) {
	if len(args) != 1 {
		usage()
	}
	f, err := os.Open(args[0])
	if err != nil {
		cli.Fatal(err)
	}
	defer f.Close()
	rec, err := harness.ReadRunRecord(f)
	if err != nil {
		cli.Fatal(err)
	}

	fmt.Printf("run        %s under %s (seed %d, scale %.2f)\n", rec.Workload, rec.Policy, rec.Seed, rec.Scale)
	fmt.Printf("fairness   %.4f   makespan %.1fs   swaps %d\n",
		rec.Result.Fairness, rec.Result.Makespan/1000, rec.Result.Swaps)
	if rec.PredMin != 0 || rec.PredMax != 0 {
		fmt.Printf("prediction %+.1f%% / %+.1f%% / %+.1f%% (min/avg/max)\n",
			rec.PredMin*100, rec.PredAvg*100, rec.PredMax*100)
	}

	if len(rec.History) > 0 {
		fmt.Println("\nadaptation trajectory (parameter changes):")
		lastSS, lastQ := 0, int64(0)
		changes := 0
		for _, h := range rec.History {
			if h.SwapSize != lastSS || h.QuantaMs != lastQ {
				fmt.Printf("  t=%7.1fs  <swap %2d, quanta %4d ms>\n", float64(h.TimeMs)/1000, h.SwapSize, h.QuantaMs)
				lastSS, lastQ = h.SwapSize, h.QuantaMs
				changes++
			}
		}
		if changes == 1 {
			fmt.Println("  (no adaptation: parameters fixed)")
		}

		fmt.Println("\ngate & swap activity by run fifth:")
		n := len(rec.History)
		fmt.Printf("  %-8s %10s %10s %10s\n", "fifth", "gate mean", "cand/q", "acc/q")
		for part := 0; part < 5; part++ {
			lo, hi := part*n/5, (part+1)*n/5
			if hi <= lo {
				continue
			}
			gate, cand, acc := 0.0, 0, 0
			for _, h := range rec.History[lo:hi] {
				gate += h.Fairness
				cand += h.Candidates
				acc += h.Accepted
			}
			k := float64(hi - lo)
			fmt.Printf("  %-8d %10.3f %10.2f %10.2f\n", part+1, gate/k, float64(cand)/k, float64(acc)/k)
		}
	}

	if pts := rec.Trace["dispersion"]; len(pts) > 0 {
		first, last := pts[0].Value, pts[len(pts)-1].Value
		fmt.Printf("\nprogress dispersion: %.4f at start -> %.4f at end\n", first, last)
	}
	fmt.Println("\nper-application results:")
	for _, b := range rec.Result.Benches {
		tag := ""
		if b.Extra {
			tag = " (extra)"
		}
		fmt.Printf("  %-15s cv=%.4f time=%.1fs%s\n", b.Name, b.CV, b.Time/1000, tag)
	}
}
