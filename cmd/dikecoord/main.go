// Command dikecoord runs the cluster coordinator: an HTTP/JSON front
// for a fleet of dikeserved workers that speaks the same /v1/runs and
// /v1/sweeps API as a single node, routes runs by spec digest over a
// consistent-hash ring, shards sweeps across healthy workers and merges
// the results deterministically.
//
// Usage:
//
//	dikecoord -workers http://w1:8080,http://w2:8080
//	dikecoord -addr :9090 -probe-interval 1s -retries 4
//
// Endpoints:
//
//	POST   /v1/runs             submit a run (routed by digest)
//	POST   /v1/sweeps           submit a sweep (sharded across workers)
//	GET    /v1/runs/{id}        poll job status + result
//	DELETE /v1/runs/{id}        cancel a job
//	GET    /v1/runs/{id}/events NDJSON terminal-event stream
//	GET    /v1/runs?digest=…    content-addressed lookup across the fleet
//	GET    /v1/store/stats      per-worker durable-store counters
//	GET    /v1/cluster/workers  fleet health + per-worker traffic
//	POST   /v1/cluster/workers  join a worker (optional ttl_ms lease)
//	DELETE /v1/cluster/workers?url=…  remove a worker
//	GET    /healthz             liveness (503 while draining)
//	GET    /metrics             Prometheus text exposition
//
// On SIGINT/SIGTERM the coordinator drains using the same rules as
// dikeserved: new submissions get 503, in-flight jobs and shards run to
// completion (bounded by -drain-timeout), then the process exits. Drain
// the coordinator before the workers — coordinator first, then fleet —
// so no shard is re-routed into a draining worker.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dike/internal/cli"
	"dike/internal/cluster"
)

func main() {
	var (
		addrFlag     = flag.String("addr", ":9090", "listen address")
		workersFlag  = flag.String("workers", "", "comma-separated dikeserved base URLs (may be empty: workers can join at runtime)")
		probeFlag    = flag.Duration("probe-interval", 2*time.Second, "worker /healthz probing period")
		shardFlag    = flag.Duration("shard-timeout", 2*time.Minute, "per-attempt bound on one run or shard (submit + poll)")
		retryFlag    = flag.Int("retries", 3, "placement attempts per run or shard (first try included)")
		drainFlag    = flag.Duration("drain-timeout", 60*time.Second, "grace period for in-flight jobs on shutdown")
		downFlag     = flag.Int("down-after", 0, "consecutive failures before a worker's breaker opens (0 = default 3)")
		upFlag       = flag.Int("up-after", 0, "consecutive successes before a half-open breaker closes (0 = default 2)")
		openForFlag  = flag.Duration("open-for", 0, "how long an open breaker waits before probing half-open (0 = default 5s)")
		inflightFlag = flag.Int("max-inflight", 0, "per-worker inflight cap before placements spill over (0 = default 32, <0 disables)")
	)
	flag.Parse()

	var workers []string
	for _, w := range strings.Split(*workersFlag, ",") {
		if w = strings.TrimSpace(w); w != "" {
			workers = append(workers, strings.TrimRight(w, "/"))
		}
	}

	coord, err := cluster.New(cluster.Config{
		Workers:       workers,
		ProbeInterval: *probeFlag,
		ShardTimeout:  *shardFlag,
		RetryBudget:   *retryFlag,
		Breaker: cluster.BreakerConfig{
			DownAfter: *downFlag,
			UpAfter:   *upFlag,
			OpenFor:   *openForFlag,
		},
		MaxInflightPerWorker: *inflightFlag,
	})
	if err != nil {
		cli.Fatal(err)
	}
	coord.Start()

	httpSrv := &http.Server{
		Addr:              *addrFlag,
		Handler:           coord.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		if len(workers) == 0 {
			log.Printf("dikecoord listening on %s with an empty fleet; waiting for workers to join", *addrFlag)
		} else {
			log.Printf("dikecoord listening on %s, fronting %d workers: %s",
				*addrFlag, len(workers), strings.Join(workers, ", "))
		}
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errCh:
		// The listener died before any shutdown was requested.
		log.Fatal(err)
	case sig := <-sigCh:
		log.Printf("received %v, draining (timeout %v)", sig, *drainFlag)
	}

	// Drain the job layer first — submissions now get 503 while status,
	// events, metrics and the fleet view stay readable — then close the
	// HTTP listener.
	ctx, cancel := context.WithTimeout(context.Background(), *drainFlag)
	defer cancel()
	if err := coord.Drain(ctx); err != nil {
		log.Printf("drain incomplete, in-flight jobs were cancelled: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	log.Print("dikecoord stopped")
}
