// Command dikesweep sweeps Dike's 32 scheduler configurations over one
// workload and prints the fairness/performance grid (the raw material of
// Figs 2, 4 and 5), highlighting the optimum for each metric.
//
// Usage:
//
//	dikesweep -wl 3                 # WL3 grid
//	dikesweep -wl 13 -scale 0.5     # longer runs
//	dikesweep -wl 7 -csv grid.csv   # also dump as CSV
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"dike/internal/cli"
	"dike/internal/core"
	"dike/internal/harness"
	"dike/internal/sim"
	"dike/internal/workload"
)

func main() {
	var (
		wlFlag     = flag.Int("wl", 1, "Table II workload number (1-16)")
		seedFlag   = flag.Uint64("seed", 42, "simulation seed")
		scaleFlag  = flag.Float64("scale", 0.25, "workload scale")
		workerFlag = flag.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		csvFlag    = flag.String("csv", "", "file to write the grid as CSV")
	)
	flag.Parse()

	w, err := workload.Table2(*wlFlag)
	if err != nil {
		cli.Fatal(err)
	}
	grid, err := harness.Sweep(context.Background(), w, harness.Options{
		Seed: *seedFlag, SweepScale: *scaleFlag, Workers: *workerFlag,
	})
	if err != nil {
		cli.Fatal(err)
	}

	// Locate maxima.
	var bestF, bestP harness.ConfigResult
	for _, r := range grid {
		if r.Fairness > bestF.Fairness {
			bestF = r
		}
		if r.Perf > bestP.Perf {
			bestP = r
		}
	}
	fmt.Printf("workload %s (%s): 32-configuration sweep\n", w.Name, w.Type())
	fmt.Printf("best fairness    <swap %2d, quanta %4d>  F=%.4f\n", bestF.SwapSize, bestF.Quanta.Millis(), bestF.Fairness)
	fmt.Printf("best performance <swap %2d, quanta %4d>  1/makespan=%.3g\n\n", bestP.SwapSize, bestP.Quanta.Millis(), bestP.Perf)

	fmt.Printf("%-14s", "quanta\\swap")
	for _, ss := range core.SwapSizeLevels() {
		fmt.Printf("  %12d", ss)
	}
	fmt.Println()
	i := 0
	for _, q := range core.QuantaLevels {
		fmt.Printf("%-14s", fmt.Sprintf("%dms", sim.Time(q).Millis()))
		for range core.SwapSizeLevels() {
			r := grid[i]
			fmt.Printf("  %.3f/%.3f", r.Fairness/bestF.Fairness, r.Perf/bestP.Perf)
			i++
		}
		fmt.Println()
	}
	fmt.Println("\ncells are normalized fairness/performance (1.000 = best)")

	if *csvFlag != "" {
		f, err := os.Create(*csvFlag)
		if err != nil {
			cli.Fatal(err)
		}
		defer f.Close()
		fmt.Fprintln(f, "swap_size,quanta_ms,fairness,inv_makespan,swaps")
		for _, r := range grid {
			fmt.Fprintf(f, "%d,%d,%.6f,%.6g,%d\n", r.SwapSize, r.Quanta.Millis(), r.Fairness, r.Perf, r.Swaps)
		}
	}
}
