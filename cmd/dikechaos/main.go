// Command dikechaos is a deterministic fault-injecting reverse proxy:
// it fronts one dikeserved worker (or any HTTP service) and injects a
// seeded schedule of network faults — latency, connection resets, 5xx
// bursts, slow and truncated bodies, flapping windows — so fleet
// behavior under a hostile network can be reproduced exactly by
// re-running with the same seed.
//
// Usage:
//
//	dikechaos -listen :7001 -target http://worker1:8080 -seed 42 -rate 0.2 -faults reset,5xx
//	dikechaos -listen :7002 -target http://worker2:8080 -seed 42 -faults all
//
// The fault decision for request n is a pure function of (seed, n):
// two proxies with identical flags issue identical schedules, and a
// soak re-run reproduces the exact failure pattern. On SIGINT/SIGTERM
// the proxy logs its per-class injection counts and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dike/internal/chaos"
	"dike/internal/cli"
)

func main() {
	var (
		listenFlag  = flag.String("listen", ":7001", "listen address")
		targetFlag  = flag.String("target", "", "upstream base URL to front (required)")
		seedFlag    = flag.Uint64("seed", 1, "fault schedule seed; same seed, same schedule")
		rateFlag    = flag.Float64("rate", 0.1, "per-request fault probability for the random classes, in [0,1]")
		faultsFlag  = flag.String("faults", "reset,5xx", "comma list of fault classes (latency,reset,5xx,slowbody,truncate,flap), or all/none")
		latencyFlag = flag.Duration("max-latency", 250*time.Millisecond, "upper bound on injected latency")
		burstFlag   = flag.Int("burst", 3, "consecutive 503s per 5xx draw")
		flapFlag    = flag.Int("flap-every", 50, "flap window size in requests")
		flapDown    = flag.Int("flap-down", 10, "requests reset at the start of each flap window")
	)
	flag.Parse()

	if *targetFlag == "" {
		cli.Fatal(fmt.Errorf("dikechaos: -target is required"))
	}
	classes, err := chaos.ParseClasses(*faultsFlag)
	if err != nil {
		cli.Fatal(err)
	}
	if *rateFlag < 0 || *rateFlag > 1 {
		cli.Fatal(fmt.Errorf("dikechaos: -rate must be in [0,1], got %v", *rateFlag))
	}

	proxy, err := chaos.NewProxy(*targetFlag, chaos.Config{
		Seed:       *seedFlag,
		Rate:       *rateFlag,
		Classes:    classes,
		MaxLatency: *latencyFlag,
		BurstLen:   *burstFlag,
		FlapEvery:  *flapFlag,
		FlapDown:   *flapDown,
	})
	if err != nil {
		cli.Fatal(err)
	}

	httpSrv := &http.Server{
		Addr:              *listenFlag,
		Handler:           proxy,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("dikechaos listening on %s → %s (seed=%d rate=%v faults=%v)",
			*listenFlag, *targetFlag, *seedFlag, *rateFlag, classes)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case sig := <-sigCh:
		log.Printf("received %v, shutting down", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	log.Printf("dikechaos injected: %s", proxy.Summary())
}
