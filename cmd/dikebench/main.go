// Command dikebench regenerates the paper's tables and figures.
//
// Usage:
//
//	dikebench -exp all                 # every experiment
//	dikebench -exp fig6                # one experiment (fig6 = 6a+6b+Table III)
//	dikebench -exp fig1,fig7 -scale 1  # several, at full workload scale
//	dikebench -list                    # list experiment ids
//
// Output is plain text tables; add -csv DIR to also dump each table as a
// CSV file under DIR.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dike/internal/cli"
	"dike/internal/harness"
)

func main() {
	var (
		expFlag    = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		listFlag   = flag.Bool("list", false, "list experiment ids and exit")
		seedFlag   = flag.Uint64("seed", 42, "simulation seed")
		scaleFlag  = flag.Float64("scale", 0.5, "workload scale for headline experiments")
		sweepFlag  = flag.Float64("sweep-scale", 0.25, "workload scale for 32-configuration sweeps")
		workerFlag = flag.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		quickFlag  = flag.Bool("quick", false, "shrink everything for a fast smoke run")
		csvFlag    = flag.String("csv", "", "directory to write per-table CSV files into")
		benchOut   = flag.String("bench-out", "BENCH_scale.json", "file the scale experiment writes raw measurements to")
		benchBase  = flag.String("bench-baseline", "", "baseline BENCH_scale.json to compare against; exit 1 if ns/quantum regresses >25%")
		sloOut     = flag.String("slo-out", "BENCH_slo.json", "file the slo experiment writes raw measurements to")
		sloBase    = flag.String("slo-baseline", "", "baseline BENCH_slo.json to compare against; exit 1 if worst-tenant p99 regresses >25%")
		tourOut    = flag.String("tournament-out", "BENCH_tournament.json", "file the tournament experiment writes its leaderboard to")
		tourBase   = flag.String("tournament-baseline", "", "baseline BENCH_tournament.json; exit 1 if any cell's p99 regresses >25% or the meta policy misses its regret bar")
		tourRegret = flag.Float64("tournament-regret", 0.10, "max meta-policy regret vs per-load oracle-best when gating against -tournament-baseline")
		tourStore  = flag.String("tournament-store", "", "durable store directory caching tournament cells by run digest")
		tourServer = flag.String("tournament-server", "", "dikeserved/dikecoord base URL to submit tournament cells to instead of simulating locally")
		energyOut  = flag.String("energy-out", "BENCH_energy.json", "file the energy experiment writes raw measurements to")
		energyBase = flag.String("energy-baseline", "", "baseline BENCH_energy.json; exit 1 if any cell's EDP regresses >10% or the fairness governor fails its gate")
	)
	flag.Parse()

	if *listFlag {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-6s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := harness.Options{
		Seed:             *seedFlag,
		Scale:            *scaleFlag,
		SweepScale:       *sweepFlag,
		Workers:          *workerFlag,
		Quick:            *quickFlag,
		BenchOut:         *benchOut,
		SLOOut:           *sloOut,
		TournamentOut:    *tourOut,
		TournamentStore:  *tourStore,
		TournamentServer: *tourServer,
		EnergyOut:        *energyOut,
	}

	var ids []string
	if *expFlag == "all" {
		ids = harness.ExperimentIDs()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	for _, id := range ids {
		e, err := harness.Lookup(id)
		if err != nil {
			cli.Fatal(err)
		}
		start := time.Now()
		rep, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: ", id)
			cli.Fatal(err)
		}
		if err := rep.Render(os.Stdout); err != nil {
			cli.Fatal(err)
		}
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		if *csvFlag != "" {
			if err := writeCSVs(*csvFlag, rep); err != nil {
				cli.Fatal(err)
			}
		}
		if rep.ID == "scale" && *benchBase != "" {
			if err := checkBenchBaseline(*benchOut, *benchBase); err != nil {
				cli.Fatal(err)
			}
		}
		if rep.ID == "slo" && *sloBase != "" {
			if err := checkSLOBaseline(*sloOut, *sloBase); err != nil {
				cli.Fatal(err)
			}
		}
		if rep.ID == "tournament" && *tourBase != "" {
			if err := checkTournamentBaseline(*tourOut, *tourBase, *tourRegret); err != nil {
				cli.Fatal(err)
			}
		}
		if rep.ID == "energy" && *energyBase != "" {
			if err := checkEnergyBaseline(*energyOut, *energyBase); err != nil {
				cli.Fatal(err)
			}
		}
	}
}

// checkEnergyBaseline gates the energy grid two ways: per-cell EDP
// drift against a committed baseline (EDP is simulated, so any trip is
// a real scheduling/governing change), and the absolute bar that the
// fairness-coupled governor beats ondemand on fairness-per-J·s at the
// tightest cap.
func checkEnergyBaseline(current, baseline string) error {
	cur, err := harness.LoadBenchEnergy(current)
	if err != nil {
		return err
	}
	base, err := harness.LoadBenchEnergy(baseline)
	if err != nil {
		return err
	}
	problems := harness.CompareBenchEnergy(cur, base, 0.10)
	problems = append(problems, harness.GateBenchEnergy(cur)...)
	if len(problems) == 0 {
		fmt.Printf("EDP within 10%% of baseline %s; fairness governor beats ondemand at the tightest cap\n", baseline)
		return nil
	}
	for _, p := range problems {
		fmt.Fprintln(os.Stderr, "energy gate: "+p)
	}
	return fmt.Errorf("%d energy gate violation(s) vs %s", len(problems), baseline)
}

// checkTournamentBaseline gates the tournament leaderboard two ways:
// per-cell p99 drift against a committed baseline (like the slo gate),
// and the absolute meta-scheduling bars — meta beats the worst fixed
// policy and stays within regretMax of the per-load oracle-best.
func checkTournamentBaseline(current, baseline string, regretMax float64) error {
	cur, err := harness.LoadBenchTournament(current)
	if err != nil {
		return err
	}
	base, err := harness.LoadBenchTournament(baseline)
	if err != nil {
		return err
	}
	problems := harness.CompareBenchTournament(cur, base, 0.25)
	problems = append(problems, harness.GateBenchTournament(cur, regretMax)...)
	if len(problems) == 0 {
		fmt.Printf("leaderboard within 25%% of baseline %s; meta within %.0f%% of oracle-best at every load\n",
			baseline, 100*regretMax)
		return nil
	}
	for _, p := range problems {
		fmt.Fprintln(os.Stderr, "tournament gate: "+p)
	}
	return fmt.Errorf("%d tournament gate violation(s) vs %s", len(problems), baseline)
}

// checkSLOBaseline compares the slo experiment's fresh measurements
// against a committed baseline and fails on a >25% worst-tenant p99
// sojourn regression at any (load, policy) point both files measured.
// Sojourns are simulated time, so a trip is a real scheduling change,
// not wall-clock noise.
func checkSLOBaseline(current, baseline string) error {
	cur, err := harness.LoadBenchSLO(current)
	if err != nil {
		return err
	}
	base, err := harness.LoadBenchSLO(baseline)
	if err != nil {
		return err
	}
	regressions := harness.CompareBenchSLO(cur, base, 0.25)
	if len(regressions) == 0 {
		fmt.Printf("tail latency within 25%% of baseline %s\n", baseline)
		return nil
	}
	for _, r := range regressions {
		fmt.Fprintln(os.Stderr, "tail latency regression: "+r)
	}
	return fmt.Errorf("%d tail-latency regression(s) vs %s", len(regressions), baseline)
}

// checkBenchBaseline compares the scale experiment's fresh measurements
// against a committed baseline and fails on a >25% per-policy decision
// cost regression at any machine point both files measured.
func checkBenchBaseline(current, baseline string) error {
	cur, err := harness.LoadBenchScale(current)
	if err != nil {
		return err
	}
	base, err := harness.LoadBenchScale(baseline)
	if err != nil {
		return err
	}
	regressions := harness.CompareBenchScale(cur, base, 0.25)
	if len(regressions) == 0 {
		fmt.Printf("decision cost within 25%% of baseline %s\n", baseline)
		return nil
	}
	for _, r := range regressions {
		fmt.Fprintln(os.Stderr, "decision cost regression: "+r)
	}
	return fmt.Errorf("%d decision-cost regression(s) vs %s", len(regressions), baseline)
}

// writeCSVs dumps each table of rep as DIR/<exp>_<n>.csv.
func writeCSVs(dir string, rep *harness.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, t := range rep.Tables {
		path := filepath.Join(dir, fmt.Sprintf("%s_%d.csv", rep.ID, i))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := t.CSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
