// Command dikeload is a closed-loop load generator for dikeserved: N
// concurrent clients each submit a job, wait for the submission
// response, optionally poll the job to completion, then immediately
// submit the next one. It reports throughput, submission-latency
// percentiles and a per-status-code breakdown, and exits non-zero if
// any request failed with something other than backpressure (429).
//
// Usage:
//
//	dikeload -n 50 -c 4                       # 50 requests, 4 clients
//	dikeload -addr http://host:9000 -mix 10,1 # 1 sweep per 10 runs
//	dikeload -seed-space 4                    # force cache/dedup hits
//	dikeload -churn -n 60                     # zero-loss soak gate
//
// Churn mode (-churn) is the soak gate for a fleet under failure
// injection: every spec is retried through transport errors, 5xx and
// backpressure until it completes, each completed result is hashed,
// and the run fails unless every spec completed (zero loss) and every
// digest resolved to exactly one result hash (no divergent
// duplicates). The final "soak digest" is a deterministic hash over
// the digest→result-hash table, so two soaks of the same spec set —
// chaos or no chaos, one worker or five — must print the same value.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dike/internal/cli"
)

func main() {
	var (
		addrFlag  = flag.String("addr", "http://127.0.0.1:8080", "dikeserved base URL")
		nFlag     = flag.Int("n", 50, "total requests to issue")
		cFlag     = flag.Int("c", 4, "concurrent closed-loop clients")
		mixFlag   = flag.String("mix", "1,0", "request mix as run,sweep weights")
		scaleFlag = flag.Float64("scale", 0.02, "workload scale per submitted run")
		seedFlag  = flag.Uint64("seed", 1, "base simulation seed")
		spaceFlag = flag.Int("seed-space", 0, "distinct seeds to draw from (0 = all distinct; small values force cache hits)")
		pollFlag  = flag.Bool("poll", true, "poll each accepted job to completion")
		waitFlag  = flag.Duration("job-timeout", 2*time.Minute, "per-job completion timeout when polling")
		churnFlag = flag.Bool("churn", false, "zero-loss soak gate: retry every spec to completion, verify exactly-once byte-identical results")
	)
	flag.Parse()
	if *nFlag < 1 || *cFlag < 1 {
		cli.Fatal(fmt.Errorf("dikeload: -n and -c must be positive"))
	}
	runW, sweepW, err := parseMix(*mixFlag)
	if err != nil {
		cli.Fatal(err)
	}
	if *churnFlag && sweepW > 0 {
		cli.Fatal(fmt.Errorf("dikeload: -churn verifies run results and is runs-only; use -mix 1,0"))
	}

	lg := &loadgen{
		base:    strings.TrimRight(*addrFlag, "/"),
		client:  &http.Client{Timeout: 30 * time.Second},
		n:       *nFlag,
		scale:   *scaleFlag,
		seed:    *seedFlag,
		space:   *spaceFlag,
		runW:    runW,
		sweepW:  sweepW,
		poll:    *pollFlag,
		timeout: *waitFlag,
		churn:   *churnFlag,
		codes:   make(map[int]int),
		lat:     newReservoir(reservoirSize, int64(*seedFlag)),
		results: make(map[string]map[string]int),
	}

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < *cFlag; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			lg.run(id)
		}(i)
	}
	wg.Wait()
	lg.report(os.Stdout, time.Since(start), *cFlag)

	if lg.hardErrors() > 0 {
		os.Exit(1)
	}
}

// loadgen is the shared state of all closed-loop clients.
type loadgen struct {
	base    string
	client  *http.Client
	n       int
	scale   float64
	seed    uint64
	space   int
	runW    int
	sweepW  int
	poll    bool
	timeout time.Duration
	churn   bool

	next int64 // atomically claimed request index

	mu        sync.Mutex
	codes     map[int]int // HTTP status → count (submissions only)
	lat       *reservoir
	transport int
	cached    int
	deduped   int
	completed int
	jobFailed int
	// Churn-mode accounting: spec digest → result hash → times seen,
	// plus specs that never completed inside their budget.
	results map[string]map[string]int
	lost    int
	retried int
}

// submitResponse mirrors the server's submission body.
type submitResponse struct {
	ID      string `json:"id"`
	Status  string `json:"status"`
	Digest  string `json:"digest"`
	Cached  bool   `json:"cached"`
	Deduped bool   `json:"deduped"`
}

// jobView mirrors the fields of the server's job view we poll on.
type jobView struct {
	Status string          `json:"status"`
	Digest string          `json:"digest"`
	Error  string          `json:"error"`
	Result json.RawMessage `json:"result,omitempty"`
}

// run is one closed-loop client: claim an index, submit, (optionally)
// poll to completion, repeat until the shared budget is spent.
func (lg *loadgen) run(client int) {
	for {
		i := atomic.AddInt64(&lg.next, 1) - 1
		if i >= int64(lg.n) {
			return
		}
		seed := lg.seed + uint64(i)
		if lg.space > 0 {
			seed = lg.seed + uint64(i)%uint64(lg.space)
		}
		if lg.churn {
			lg.churnOne(i, seed)
			continue
		}
		path, body := lg.request(i, seed)

		t0 := time.Now()
		resp, err := lg.client.Post(lg.base+path, "application/json", bytes.NewReader(body))
		lat := time.Since(t0)
		if err != nil {
			lg.mu.Lock()
			lg.transport++
			lg.mu.Unlock()
			continue
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()

		var sub submitResponse
		json.Unmarshal(raw, &sub)
		lg.mu.Lock()
		lg.codes[resp.StatusCode]++
		lg.lat.observe(lat)
		if sub.Cached {
			lg.cached++
		}
		if sub.Deduped {
			lg.deduped++
		}
		lg.mu.Unlock()

		accepted := resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK
		if lg.poll && accepted && sub.ID != "" {
			lg.await(sub.ID)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			// Closed loop honours backpressure: brief pause, then retry
			// budget permitting (the index is already consumed — 429s are
			// part of the measured mix, not retried invisibly).
			time.Sleep(100 * time.Millisecond)
		}
	}
}

// request picks run vs sweep by weight and builds the POST body. The
// choice hangs off the claimed request index, not a per-client RNG, so
// two identical dikeload invocations submit the identical spec mix
// regardless of how clients interleave — which is what lets a smoke
// test rerun a pass against a warm store and demand zero simulations.
func (lg *loadgen) request(i int64, seed uint64) (string, []byte) {
	if lg.sweepW > 0 && int(i%int64(lg.runW+lg.sweepW)) < lg.sweepW {
		body, _ := json.Marshal(map[string]any{
			"workload": 1, "seed": seed, "scale": lg.scale,
		})
		return "/v1/sweeps", body
	}
	policies := []string{"dike", "cfs", "dio"}
	body, _ := json.Marshal(map[string]any{
		"workload": 1 + int(seed%4), "policy": policies[seed%uint64(len(policies))],
		"seed": seed, "scale": lg.scale,
	})
	return "/v1/runs", body
}

// churnOne drives one spec to completion through whatever the network
// is doing: submissions are retried on transport errors, 5xx and 429
// with truncated backoff, and a placement that the fleet ultimately
// fails is resubmitted — content addressing makes the retry safe, the
// worker serves the digest from cache or store instead of recomputing.
// Only a spec that never completes inside the -job-timeout budget
// counts as lost.
func (lg *loadgen) churnOne(i int64, seed uint64) {
	path, body := lg.request(i, seed)
	deadline := time.Now().Add(lg.timeout)
	backoff := 50 * time.Millisecond
	first := true
	for time.Now().Before(deadline) {
		if !first {
			lg.mu.Lock()
			lg.retried++
			lg.mu.Unlock()
			time.Sleep(backoff)
			if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
		}
		first = false

		t0 := time.Now()
		resp, err := lg.client.Post(lg.base+path, "application/json", bytes.NewReader(body))
		lat := time.Since(t0)
		if err != nil {
			lg.mu.Lock()
			lg.transport++
			lg.mu.Unlock()
			continue
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()

		var sub submitResponse
		json.Unmarshal(raw, &sub)
		lg.mu.Lock()
		lg.codes[resp.StatusCode]++
		lg.lat.observe(lat)
		if sub.Cached {
			lg.cached++
		}
		if sub.Deduped {
			lg.deduped++
		}
		lg.mu.Unlock()

		accepted := resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK
		if !accepted || sub.ID == "" {
			continue
		}
		digest, sum, ok := lg.awaitResult(sub.ID, sub.Digest, deadline)
		if !ok {
			continue // job failed or poll budget ran out on this attempt
		}
		lg.mu.Lock()
		lg.completed++
		if lg.results[digest] == nil {
			lg.results[digest] = make(map[string]int)
		}
		lg.results[digest][sum]++
		lg.mu.Unlock()
		return
	}
	lg.mu.Lock()
	lg.lost++
	lg.mu.Unlock()
}

// awaitResult polls one job to "done" and hashes its result bytes
// (JSON-compacted first, so byte identity is about content, not about
// which code path serialised it). Poll transport errors are retried;
// a terminal failure returns ok=false so the caller resubmits.
func (lg *loadgen) awaitResult(id, digest string, deadline time.Time) (string, string, bool) {
	for time.Now().Before(deadline) {
		resp, err := lg.client.Get(lg.base + "/v1/runs/" + id)
		if err != nil {
			lg.mu.Lock()
			lg.transport++
			lg.mu.Unlock()
			time.Sleep(50 * time.Millisecond)
			continue
		}
		var v jobView
		decErr := json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&v)
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			return "", "", false // job table lost the ID: resubmit
		}
		if decErr != nil || resp.StatusCode != http.StatusOK {
			time.Sleep(50 * time.Millisecond)
			continue
		}
		switch v.Status {
		case "done":
			if v.Digest != "" {
				digest = v.Digest
			}
			var buf bytes.Buffer
			if err := json.Compact(&buf, v.Result); err != nil {
				return "", "", false // truncated/garbled body: resubmit
			}
			sum := sha256.Sum256(buf.Bytes())
			return digest, hex.EncodeToString(sum[:]), true
		case "failed", "canceled":
			return "", "", false
		}
		time.Sleep(25 * time.Millisecond)
	}
	return "", "", false
}

// soakDigest folds the digest→result-hash table into one hex value:
// SHA-256 over the sorted "spec-digest result-hash" lines. Two soaks
// that served the same spec set with identical results print the same
// digest, whatever the fleet looked like.
func (lg *loadgen) soakDigest() string {
	lines := make([]string, 0, len(lg.results))
	for digest, sums := range lg.results {
		for sum := range sums {
			lines = append(lines, digest+" "+sum)
		}
	}
	sort.Strings(lines)
	h := sha256.New()
	for _, l := range lines {
		io.WriteString(h, l)
		io.WriteString(h, "\n")
	}
	return hex.EncodeToString(h.Sum(nil))
}

// divergent counts digests that resolved to more than one result hash
// — the duplicate-with-different-bytes failure the soak gate exists to
// catch.
func (lg *loadgen) divergent() int {
	n := 0
	for _, sums := range lg.results {
		if len(sums) > 1 {
			n++
		}
	}
	return n
}

// await polls one job until it reaches a terminal state.
func (lg *loadgen) await(id string) {
	deadline := time.Now().Add(lg.timeout)
	for time.Now().Before(deadline) {
		resp, err := lg.client.Get(lg.base + "/v1/runs/" + id)
		if err != nil {
			lg.mu.Lock()
			lg.transport++
			lg.mu.Unlock()
			return
		}
		var v jobView
		json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		switch v.Status {
		case "done":
			lg.mu.Lock()
			lg.completed++
			lg.mu.Unlock()
			return
		case "failed", "canceled":
			lg.mu.Lock()
			lg.jobFailed++
			lg.mu.Unlock()
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	lg.mu.Lock()
	lg.jobFailed++
	lg.mu.Unlock()
}

// hardErrors counts outcomes that should fail a smoke run: transport
// errors, failed jobs, and any status outside {2xx, 429}. In churn
// mode transport errors and 5xx are the injected weather, not
// failures; the gate is zero loss and zero divergent duplicates.
func (lg *loadgen) hardErrors() int {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	if lg.churn {
		return lg.lost + lg.divergent()
	}
	n := lg.transport + lg.jobFailed
	for code, count := range lg.codes {
		if (code < 200 || code > 299) && code != http.StatusTooManyRequests {
			n += count
		}
	}
	return n
}

func (lg *loadgen) report(w io.Writer, elapsed time.Duration, clients int) {
	lg.mu.Lock()
	defer lg.mu.Unlock()

	fmt.Fprintf(w, "dikeload: %d requests, %d clients, %v elapsed (%.1f req/s)\n",
		lg.lat.count+lg.transport, clients, elapsed.Round(time.Millisecond),
		float64(lg.lat.count)/elapsed.Seconds())

	codes := make([]int, 0, len(lg.codes))
	for c := range lg.codes {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	parts := make([]string, 0, len(codes)+1)
	for _, c := range codes {
		parts = append(parts, strconv.Itoa(c)+"="+strconv.Itoa(lg.codes[c]))
	}
	if lg.transport > 0 {
		parts = append(parts, "transport-error="+strconv.Itoa(lg.transport))
	}
	fmt.Fprintf(w, "  status: %s\n", strings.Join(parts, " "))
	fmt.Fprintf(w, "  served: cached=%d deduped=%d\n", lg.cached, lg.deduped)
	if lg.churn {
		fmt.Fprintf(w, "  churn:  specs=%d completed=%d lost=%d retried=%d digests=%d divergent=%d\n",
			lg.n, lg.completed, lg.lost, lg.retried, len(lg.results), lg.divergent())
		fmt.Fprintf(w, "  soak digest: %s\n", lg.soakDigest())
	} else if lg.poll {
		fmt.Fprintf(w, "  jobs:   completed=%d failed=%d\n", lg.completed, lg.jobFailed)
	}

	if lg.lat.count > 0 {
		fmt.Fprintf(w, "  submit latency: p50=%v p90=%v p99=%v max=%v\n",
			lg.lat.percentile(0.50).Round(time.Microsecond),
			lg.lat.percentile(0.90).Round(time.Microsecond),
			lg.lat.percentile(0.99).Round(time.Microsecond),
			lg.lat.max.Round(time.Microsecond))
	}
}

// reservoirSize bounds the latency sample: runs up to this size keep
// every observation (percentiles are then exact); larger runs keep a
// uniform reservoir sample, so memory stays flat at any -n.
const reservoirSize = 4096

// reservoir is a classic uniform reservoir sampler over request
// latencies, plus exact count and max. Not goroutine-safe — callers
// hold the loadgen mutex.
type reservoir struct {
	size   int
	rng    *rand.Rand
	sample []time.Duration
	count  int
	max    time.Duration
}

func newReservoir(size int, seed int64) *reservoir {
	return &reservoir{size: size, rng: rand.New(rand.NewSource(seed))}
}

func (r *reservoir) observe(d time.Duration) {
	r.count++
	if d > r.max {
		r.max = d
	}
	if len(r.sample) < r.size {
		r.sample = append(r.sample, d)
		return
	}
	if i := r.rng.Intn(r.count); i < r.size {
		r.sample[i] = d
	}
}

// percentile returns the p-quantile (p in [0, 1]) of the sample. The
// sample is in arrival order — it is only fully collected when the run
// is smaller than the reservoir — so it must be sorted before indexing:
// indexing the raw slice reports arrival order, not rank, and small
// smoke runs would print a meaningless p50/p99.
func (r *reservoir) percentile(p float64) time.Duration {
	if len(r.sample) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), r.sample...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// parseMix parses "runWeight,sweepWeight".
func parseMix(s string) (int, int, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("dikeload: -mix wants 'run,sweep' weights, got %q", s)
	}
	runW, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
	sweepW, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err1 != nil || err2 != nil || runW < 0 || sweepW < 0 || runW+sweepW == 0 {
		return 0, 0, fmt.Errorf("dikeload: bad -mix %q", s)
	}
	return runW, sweepW, nil
}
