// Command dikeload is a closed-loop load generator for dikeserved: N
// concurrent clients each submit a job, wait for the submission
// response, optionally poll the job to completion, then immediately
// submit the next one. It reports throughput, submission-latency
// percentiles and a per-status-code breakdown, and exits non-zero if
// any request failed with something other than backpressure (429).
//
// Usage:
//
//	dikeload -n 50 -c 4                       # 50 requests, 4 clients
//	dikeload -addr http://host:9000 -mix 10,1 # 1 sweep per 10 runs
//	dikeload -seed-space 4                    # force cache/dedup hits
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dike/internal/cli"
)

func main() {
	var (
		addrFlag  = flag.String("addr", "http://127.0.0.1:8080", "dikeserved base URL")
		nFlag     = flag.Int("n", 50, "total requests to issue")
		cFlag     = flag.Int("c", 4, "concurrent closed-loop clients")
		mixFlag   = flag.String("mix", "1,0", "request mix as run,sweep weights")
		scaleFlag = flag.Float64("scale", 0.02, "workload scale per submitted run")
		seedFlag  = flag.Uint64("seed", 1, "base simulation seed")
		spaceFlag = flag.Int("seed-space", 0, "distinct seeds to draw from (0 = all distinct; small values force cache hits)")
		pollFlag  = flag.Bool("poll", true, "poll each accepted job to completion")
		waitFlag  = flag.Duration("job-timeout", 2*time.Minute, "per-job completion timeout when polling")
	)
	flag.Parse()
	if *nFlag < 1 || *cFlag < 1 {
		cli.Fatal(fmt.Errorf("dikeload: -n and -c must be positive"))
	}
	runW, sweepW, err := parseMix(*mixFlag)
	if err != nil {
		cli.Fatal(err)
	}

	lg := &loadgen{
		base:    strings.TrimRight(*addrFlag, "/"),
		client:  &http.Client{Timeout: 30 * time.Second},
		n:       *nFlag,
		scale:   *scaleFlag,
		seed:    *seedFlag,
		space:   *spaceFlag,
		runW:    runW,
		sweepW:  sweepW,
		poll:    *pollFlag,
		timeout: *waitFlag,
		codes:   make(map[int]int),
		lat:     newReservoir(reservoirSize, int64(*seedFlag)),
	}

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < *cFlag; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			lg.run(id)
		}(i)
	}
	wg.Wait()
	lg.report(os.Stdout, time.Since(start), *cFlag)

	if lg.hardErrors() > 0 {
		os.Exit(1)
	}
}

// loadgen is the shared state of all closed-loop clients.
type loadgen struct {
	base    string
	client  *http.Client
	n       int
	scale   float64
	seed    uint64
	space   int
	runW    int
	sweepW  int
	poll    bool
	timeout time.Duration

	next int64 // atomically claimed request index

	mu        sync.Mutex
	codes     map[int]int // HTTP status → count (submissions only)
	lat       *reservoir
	transport int
	cached    int
	deduped   int
	completed int
	jobFailed int
}

// submitResponse mirrors the server's submission body.
type submitResponse struct {
	ID      string `json:"id"`
	Status  string `json:"status"`
	Cached  bool   `json:"cached"`
	Deduped bool   `json:"deduped"`
}

// jobView mirrors the fields of the server's job view we poll on.
type jobView struct {
	Status string `json:"status"`
	Error  string `json:"error"`
}

// run is one closed-loop client: claim an index, submit, (optionally)
// poll to completion, repeat until the shared budget is spent.
func (lg *loadgen) run(client int) {
	for {
		i := atomic.AddInt64(&lg.next, 1) - 1
		if i >= int64(lg.n) {
			return
		}
		seed := lg.seed + uint64(i)
		if lg.space > 0 {
			seed = lg.seed + uint64(i)%uint64(lg.space)
		}
		path, body := lg.request(i, seed)

		t0 := time.Now()
		resp, err := lg.client.Post(lg.base+path, "application/json", bytes.NewReader(body))
		lat := time.Since(t0)
		if err != nil {
			lg.mu.Lock()
			lg.transport++
			lg.mu.Unlock()
			continue
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()

		var sub submitResponse
		json.Unmarshal(raw, &sub)
		lg.mu.Lock()
		lg.codes[resp.StatusCode]++
		lg.lat.observe(lat)
		if sub.Cached {
			lg.cached++
		}
		if sub.Deduped {
			lg.deduped++
		}
		lg.mu.Unlock()

		accepted := resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK
		if lg.poll && accepted && sub.ID != "" {
			lg.await(sub.ID)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			// Closed loop honours backpressure: brief pause, then retry
			// budget permitting (the index is already consumed — 429s are
			// part of the measured mix, not retried invisibly).
			time.Sleep(100 * time.Millisecond)
		}
	}
}

// request picks run vs sweep by weight and builds the POST body. The
// choice hangs off the claimed request index, not a per-client RNG, so
// two identical dikeload invocations submit the identical spec mix
// regardless of how clients interleave — which is what lets a smoke
// test rerun a pass against a warm store and demand zero simulations.
func (lg *loadgen) request(i int64, seed uint64) (string, []byte) {
	if lg.sweepW > 0 && int(i%int64(lg.runW+lg.sweepW)) < lg.sweepW {
		body, _ := json.Marshal(map[string]any{
			"workload": 1, "seed": seed, "scale": lg.scale,
		})
		return "/v1/sweeps", body
	}
	policies := []string{"dike", "cfs", "dio"}
	body, _ := json.Marshal(map[string]any{
		"workload": 1 + int(seed%4), "policy": policies[seed%uint64(len(policies))],
		"seed": seed, "scale": lg.scale,
	})
	return "/v1/runs", body
}

// await polls one job until it reaches a terminal state.
func (lg *loadgen) await(id string) {
	deadline := time.Now().Add(lg.timeout)
	for time.Now().Before(deadline) {
		resp, err := lg.client.Get(lg.base + "/v1/runs/" + id)
		if err != nil {
			lg.mu.Lock()
			lg.transport++
			lg.mu.Unlock()
			return
		}
		var v jobView
		json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		switch v.Status {
		case "done":
			lg.mu.Lock()
			lg.completed++
			lg.mu.Unlock()
			return
		case "failed", "canceled":
			lg.mu.Lock()
			lg.jobFailed++
			lg.mu.Unlock()
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	lg.mu.Lock()
	lg.jobFailed++
	lg.mu.Unlock()
}

// hardErrors counts outcomes that should fail a smoke run: transport
// errors, failed jobs, and any status outside {2xx, 429}.
func (lg *loadgen) hardErrors() int {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	n := lg.transport + lg.jobFailed
	for code, count := range lg.codes {
		if (code < 200 || code > 299) && code != http.StatusTooManyRequests {
			n += count
		}
	}
	return n
}

func (lg *loadgen) report(w io.Writer, elapsed time.Duration, clients int) {
	lg.mu.Lock()
	defer lg.mu.Unlock()

	fmt.Fprintf(w, "dikeload: %d requests, %d clients, %v elapsed (%.1f req/s)\n",
		lg.lat.count+lg.transport, clients, elapsed.Round(time.Millisecond),
		float64(lg.lat.count)/elapsed.Seconds())

	codes := make([]int, 0, len(lg.codes))
	for c := range lg.codes {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	parts := make([]string, 0, len(codes)+1)
	for _, c := range codes {
		parts = append(parts, strconv.Itoa(c)+"="+strconv.Itoa(lg.codes[c]))
	}
	if lg.transport > 0 {
		parts = append(parts, "transport-error="+strconv.Itoa(lg.transport))
	}
	fmt.Fprintf(w, "  status: %s\n", strings.Join(parts, " "))
	fmt.Fprintf(w, "  served: cached=%d deduped=%d\n", lg.cached, lg.deduped)
	if lg.poll {
		fmt.Fprintf(w, "  jobs:   completed=%d failed=%d\n", lg.completed, lg.jobFailed)
	}

	if lg.lat.count > 0 {
		fmt.Fprintf(w, "  submit latency: p50=%v p90=%v p99=%v max=%v\n",
			lg.lat.percentile(0.50).Round(time.Microsecond),
			lg.lat.percentile(0.90).Round(time.Microsecond),
			lg.lat.percentile(0.99).Round(time.Microsecond),
			lg.lat.max.Round(time.Microsecond))
	}
}

// reservoirSize bounds the latency sample: runs up to this size keep
// every observation (percentiles are then exact); larger runs keep a
// uniform reservoir sample, so memory stays flat at any -n.
const reservoirSize = 4096

// reservoir is a classic uniform reservoir sampler over request
// latencies, plus exact count and max. Not goroutine-safe — callers
// hold the loadgen mutex.
type reservoir struct {
	size   int
	rng    *rand.Rand
	sample []time.Duration
	count  int
	max    time.Duration
}

func newReservoir(size int, seed int64) *reservoir {
	return &reservoir{size: size, rng: rand.New(rand.NewSource(seed))}
}

func (r *reservoir) observe(d time.Duration) {
	r.count++
	if d > r.max {
		r.max = d
	}
	if len(r.sample) < r.size {
		r.sample = append(r.sample, d)
		return
	}
	if i := r.rng.Intn(r.count); i < r.size {
		r.sample[i] = d
	}
}

// percentile returns the p-quantile (p in [0, 1]) of the sample. The
// sample is in arrival order — it is only fully collected when the run
// is smaller than the reservoir — so it must be sorted before indexing:
// indexing the raw slice reports arrival order, not rank, and small
// smoke runs would print a meaningless p50/p99.
func (r *reservoir) percentile(p float64) time.Duration {
	if len(r.sample) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), r.sample...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// parseMix parses "runWeight,sweepWeight".
func parseMix(s string) (int, int, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("dikeload: -mix wants 'run,sweep' weights, got %q", s)
	}
	runW, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
	sweepW, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err1 != nil || err2 != nil || runW < 0 || sweepW < 0 || runW+sweepW == 0 {
		return 0, 0, fmt.Errorf("dikeload: bad -mix %q", s)
	}
	return runW, sweepW, nil
}
