package main

import (
	"testing"
	"time"
)

// TestReservoirSmallRunPercentiles is the regression test for the
// small-run percentile bug: below the reservoir size the sample sits in
// arrival order, and percentile must rank it, not index it raw.
func TestReservoirSmallRunPercentiles(t *testing.T) {
	r := newReservoir(reservoirSize, 1)
	// Deliberately unsorted arrival order: descending 100ms..1ms.
	for ms := 100; ms >= 1; ms-- {
		r.observe(time.Duration(ms) * time.Millisecond)
	}
	if r.count != 100 {
		t.Fatalf("count = %d, want 100", r.count)
	}
	if got, want := r.percentile(0), 1*time.Millisecond; got != want {
		t.Errorf("p0 = %v, want %v", got, want)
	}
	if got, want := r.percentile(0.50), 50*time.Millisecond; got != want {
		t.Errorf("p50 = %v, want %v (raw arrival order would give ~51ms descending)", got, want)
	}
	if got, want := r.percentile(0.99), 99*time.Millisecond; got != want {
		t.Errorf("p99 = %v, want %v", got, want)
	}
	if got, want := r.max, 100*time.Millisecond; got != want {
		t.Errorf("max = %v, want %v", got, want)
	}
	// percentile must not mutate the sample (report prints several).
	if got := r.percentile(0.50); got != 50*time.Millisecond {
		t.Errorf("second p50 = %v, want 50ms", got)
	}
}

// TestReservoirBounded checks the sampler caps memory while keeping
// exact count and max over the full stream.
func TestReservoirBounded(t *testing.T) {
	r := newReservoir(64, 1)
	const n = 10_000
	for i := 1; i <= n; i++ {
		r.observe(time.Duration(i) * time.Microsecond)
	}
	if len(r.sample) != 64 {
		t.Fatalf("sample size = %d, want 64", len(r.sample))
	}
	if r.count != n {
		t.Fatalf("count = %d, want %d", r.count, n)
	}
	if r.max != n*time.Microsecond {
		t.Fatalf("max = %v, want %v", r.max, n*time.Microsecond)
	}
	// The sampled median of 1..n µs must land in the interior — a
	// sampler that kept only the first 64 observations would report
	// ≤64µs.
	p50 := r.percentile(0.50)
	if p50 < 1000*time.Microsecond || p50 > time.Duration(n-1000)*time.Microsecond {
		t.Errorf("sampled p50 = %v, implausible for uniform 1..%dµs", p50, n)
	}
}
