module dike

go 1.22
